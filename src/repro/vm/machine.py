"""The IR virtual machine.

Execution model: values are Python ints (unsigned 64-bit bit patterns)
for ``i64`` and Python floats for ``f64``.  Each function activation is a
dict from SSA value id to runtime value; control transfers bind branch
arguments to target block parameters.  Guest-level calls map to Python
recursion.

Intrinsic polyfills: ``weval.*`` context intrinsics are registered here
as no-op host functions so that *unspecialized* interpreter bodies run
unchanged (the paper's S3.1: intrinsics are not load-bearing for
correctness).  State intrinsics (registers/locals/stack) are only present
in the specialized variant of an interpreter and therefore have no
polyfill; calling one from the VM is an error (matching the paper's
"two versions of the interpreter body" approach, S4.3).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.ir.function import Function, Signature
from repro.ir.instructions import (
    BrIf,
    BrTable,
    Jump,
    MASK64,
    Ret,
    Trap,
    to_signed,
    wrap_i64,
)
from repro.ir.module import Module


class VMTrap(Exception):
    """Guest execution trapped (unreachable, bad memory access, etc.)."""


class OutOfFuel(Exception):
    """The configured fuel limit was exhausted."""


class GuardFailed(Exception):
    """A speculation ``guard`` instruction saw an unexpected value.

    Raised by specialized code only; the VM catches it at the call
    boundary of the guarded function, rolls the execution counters back
    to the call entry (the verifier guarantees nothing observable
    happened before a guard), and deoptimizes: the call re-runs under
    the function's registered generic fallback.

    ``function`` names the specialized function whose guard failed.
    The call-boundary handler matches it against its own callee so a
    failure propagating out of a *nested* guarded call (one with no
    registered fallback of its own) is re-raised instead of mistaken
    for the outer function's guard — by the time a nested call runs,
    the outer function's entry guards have long passed and its body may
    have observable effects, so rolling the outer call back would be
    unsound.

    ``site`` attributes the failure to one speculation site (a
    polymorphic inline guard's site id); ``None`` means a function-level
    entry guard.  The tiering controller uses it to demote exactly the
    failed speculation, never an unrelated guard in the same function.
    """

    def __init__(self, function: str, message: Optional[str] = None,
                 site: Optional[int] = None):
        super().__init__(message if message is not None else function)
        self.function = function
        self.site = site


@dataclasses.dataclass
class ExecStats:
    """Deterministic execution counters."""

    fuel: int = 0           # instructions + terminators executed
    loads: int = 0
    stores: int = 0
    calls: int = 0
    indirect_calls: int = 0
    host_calls: int = 0
    backedges: int = 0      # backward intra-function jumps (tier profiling)

    def snapshot(self) -> "ExecStats":
        return dataclasses.replace(self)

    def restore(self, saved: "ExecStats") -> None:
        """Roll every counter back to ``saved`` (deopt unwinding)."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(saved, field.name))

    def delta(self, since: "ExecStats") -> "ExecStats":
        return ExecStats(
            fuel=self.fuel - since.fuel,
            loads=self.loads - since.loads,
            stores=self.stores - since.stores,
            calls=self.calls - since.calls,
            indirect_calls=self.indirect_calls - since.indirect_calls,
            host_calls=self.host_calls - since.host_calls,
            backedges=self.backedges - since.backedges,
        )


class VM:
    """An instantiated module: memory + globals + table + execution."""

    def __init__(self, module: Module, fuel_limit: Optional[int] = None,
                 compiled: Optional[Dict[str, object]] = None):
        self.module = module
        self.memory = bytearray(module.memory_init)
        self.globals: Dict[str, int] = dict(module.globals)
        self.stats = ExecStats()
        self.fuel_limit = fuel_limit
        # Tier-2 backend: function name -> Python callable with the same
        # observable semantics as interpreting the IR body.  Consulted on
        # every call, so compiled and interpreted functions mix freely.
        self.compiled: Dict[str, object] = dict(compiled or {})
        # Call-boundary fast path (PR 10): the module's ``imports`` dict
        # and ``table`` list are append-only and never rebound (see
        # repro.ir.module), and ``self.compiled`` is created just above
        # and only ever ``.update()``d, so the per-call probes can bind
        # the containers (and their bound lookup methods) once here
        # instead of re-resolving ``self.module.imports`` etc. per call.
        self._imports_get = module.imports.get
        self._table = module.table
        self._compiled_get = self.compiled.get
        # Dynamic-tiering hooks (repro.pipeline.tiering).  ``tier_hook``
        # fires before a call to any function named in ``tier_generics``
        # and may return a replacement function name (a just-promoted
        # specialization); ``deopt_fallbacks`` maps a guarded specialized
        # function to the generic function a failed guard falls back to,
        # and ``deopt_hook`` is notified of each deopt.  All default to
        # inert so untiered execution pays one ``is not None`` test per
        # call at most.
        self.tier_hook = None
        self.tier_generics: frozenset = frozenset()
        self.deopt_fallbacks: Dict[str, str] = {}
        self.deopt_hook = None
        # Per-call-site profiling and resuming-guard notification
        # (speculative inlining).  ``site_profile_hook(name, site,
        # index)`` observes the callee table index of each call_indirect
        # executed in a function named in ``site_profile_functions``;
        # ``site_miss_hook(name, site)`` is notified when a resuming
        # site guard misses (execution continues on the fallback path).
        self.site_profile_hook = None
        self.site_profile_functions: frozenset = frozenset()
        self.site_miss_hook = None
        # name -> (function object, {id(instr): site id}) — call sites
        # enumerated once per profiled residual, identity-validated like
        # the backedge cache below.
        self._site_id_cache: Dict[str, tuple] = {}
        # Backward-jump profiling (tier 0 loop counters); off by default
        # so the interpreter hot loop is untouched outside tiered mode.
        self.count_backedges = False
        # Per-function retreating-edge sets for backedge profiling, keyed
        # by name and validated against the function object so a name
        # rebound to a new body is never served stale loop structure.
        self._backedge_cache: Dict[str, tuple] = {}
        self._call_depth = 0
        self._max_call_depth = 1000
        # Per-site direct call linking (PR 10).  Imported lazily: the
        # pipeline package imports this module at its own top level, so
        # a module-level import here would be circular.
        from repro.pipeline.links import CallLinkTable
        self.links = CallLinkTable(self)
        # Emitted preambles bind their slot list via this dict (one
        # ``.get`` per invocation); it is the link table's own mapping,
        # shared by reference.
        self._link_slots = self.links._functions
        # Guest calls map to Python recursion (a handful of Python frames
        # per guest frame); make sure the guest limit is hit first.
        import sys
        if sys.getrecursionlimit() < 20000:
            sys.setrecursionlimit(20000)

    # ------------------------------------------------------------------
    # Memory access.
    # ------------------------------------------------------------------
    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > len(self.memory):
            raise VMTrap(f"out-of-bounds memory access at {addr:#x}+{size}")

    def load_bytes(self, addr: int, size: int) -> bytes:
        self._check_range(addr, size)
        return bytes(self.memory[addr:addr + size])

    def store_bytes(self, addr: int, data: bytes) -> None:
        self._check_range(addr, len(data))
        self.memory[addr:addr + len(data)] = data

    def load_u64(self, addr: int) -> int:
        self._check_range(addr, 8)
        return int.from_bytes(self.memory[addr:addr + 8], "little")

    def store_u64(self, addr: int, value: int) -> None:
        self._check_range(addr, 8)
        self.memory[addr:addr + 8] = (value & MASK64).to_bytes(8, "little")

    def load_f64(self, addr: int) -> float:
        import struct
        self._check_range(addr, 8)
        return struct.unpack_from("<d", self.memory, addr)[0]

    def store_f64(self, addr: int, value: float) -> None:
        import struct
        self._check_range(addr, 8)
        struct.pack_into("<d", self.memory, addr, value)

    # ------------------------------------------------------------------
    # Calls.
    # ------------------------------------------------------------------
    def install_compiled(self, compiled: Dict[str, object]) -> None:
        """Register tier-2 backend callables (name -> ``fn(vm, *args)``)."""
        links = self.links
        for name in compiled:
            if name in links._functions:
                # The name is being rebound to a (potentially different)
                # body: its recorded call-site descriptors no longer
                # describe the new entry point.
                links.discard(name)
        self.compiled.update(compiled)
        # Installing is a dispatch-changing event: any site may now link
        # (or must unlink) differently.  This covers every controller
        # install path — promote, per-site demote, heat adoption.
        links.invalidate()

    def call(self, name: str, args: List[object] = ()) -> object:
        """Call a function (host import, compiled, or IR) by name."""
        host = self._imports_get(name)
        if host is not None:
            self.stats.host_calls += 1
            return host.fn(self, *args)
        if self.tier_hook is not None and name in self.tier_generics:
            # Profile the call; a freshly promoted specialization is
            # installed *at this boundary* and takes over immediately
            # (guest-level dispatch slots only observe it from the next
            # call on, which would make the promoting call itself run
            # generic and diverge from the pure-AOT execution).
            redirect = self.tier_hook(name, args)
            if redirect is not None:
                name = redirect
        if self.deopt_fallbacks and name in self.deopt_fallbacks:
            return self._call_guarded(name, args)
        return self._dispatch(name, args)

    def _dispatch(self, name: str, args) -> object:
        """Run a compiled or IR function by name (post-hook)."""
        fn = self._compiled_get(name)
        if fn is not None:
            nparams = getattr(fn, "_nparams", None)
            if nparams is not None:
                # Fixed-arity tier-2 entry point: the callee prologue
                # owns the depth bookkeeping, so the only boundary work
                # left here is the arity trap (same message _eval
                # raises for the interpreted body).
                if len(args) != nparams:
                    raise VMTrap(f"{name}: expected {nparams} args, "
                                 f"got {len(args)}")
                return fn(self, *args)
            self._call_depth += 1
            if self._call_depth > self._max_call_depth:
                self._call_depth -= 1
                raise VMTrap(f"call stack exhausted in {name}")
            try:
                return fn(self, *args)
            finally:
                self._call_depth -= 1
        func = self.module.functions.get(name)
        if func is None:
            raise VMTrap(f"call to unknown function {name}")
        return self._run_function(func, list(args))

    def _call_guarded(self, name: str, args) -> object:
        """Call a speculatively specialized function with deopt support.

        A :class:`GuardFailed` from the callee's unwinding guards rolls
        the execution counters back to the call boundary and re-runs the
        registered generic fallback with the same arguments, so the call
        is observably identical to one that was never specialized.  The
        verifier's path rule (no observable effect between entry and any
        unwinding guard) makes this sound even for mid-function guards.
        """
        saved = self.stats.snapshot()
        try:
            return self._dispatch(name, args)
        except GuardFailed as exc:
            if exc.function != name:
                # A nested guarded call failed and had no fallback of
                # its own: not this boundary's deopt.  Handling it here
                # would re-run *this* function's generic body after its
                # specialized body already executed side effects up to
                # the nested call — double execution, not a rollback.
                raise
            self.stats.restore(saved)
            if self.deopt_hook is not None:
                self.deopt_hook(name, exc.site)
            fallback = self.deopt_fallbacks[name]
            func = self.module.functions.get(fallback)
            if func is None:
                raise VMTrap(f"deopt of {name}: unknown fallback "
                             f"{fallback}")
            return self._run_function(func, list(args))

    def call_table(self, index: int, args: List[object]) -> object:
        self.stats.indirect_calls += 1
        table = self._table
        if index <= 0 or index >= len(table):
            raise VMTrap(f"indirect call to bad table index {index}")
        name = table[index]
        if name is None:
            raise VMTrap(f"indirect call to null table entry {index}")
        return self.call(name, args)

    # ------------------------------------------------------------------
    # The core evaluation loop.
    # ------------------------------------------------------------------
    def _run_function(self, func: Function, args: List[object]) -> object:
        self._call_depth += 1
        if self._call_depth > self._max_call_depth:
            self._call_depth -= 1
            raise VMTrap(f"call stack exhausted in {func.name}")
        try:
            return self._eval(func, args)
        finally:
            self._call_depth -= 1

    def _loop_backedges(self, func: Function):
        """Retreating-edge set for ``func``, cached for the VM's lifetime.

        Keyed by function name with an identity check on the cached
        function object: module function tables only ever *add* names,
        but if a name were rebound the stale analysis must not survive.
        """
        cached = self._backedge_cache.get(func.name)
        if cached is not None and cached[0] is func:
            return cached[1]
        from repro.ir.cfg import retreating_edges
        edges = retreating_edges(func)
        self._backedge_cache[func.name] = (func, edges)
        return edges

    def notify_site_miss(self, name: str, site: int) -> None:
        """A resuming site guard missed in ``name``; execution continues
        on its fallback path.  Called by both the IR interpretation of
        resuming guards and compiled tier-2 code."""
        if self.site_miss_hook is not None:
            self.site_miss_hook(name, site)

    def _call_sites(self, func: Function) -> Dict[int, int]:
        """``id(instr) -> site id`` for ``func``'s call_indirect sites,
        numbered in block-id order (the canonical residual order the
        inliner uses), cached with the same identity discipline as the
        backedge cache."""
        cached = self._site_id_cache.get(func.name)
        if cached is not None and cached[0] is func:
            return cached[1]
        from repro.opt.inline import enumerate_call_sites
        sites = {id(instr): site
                 for site, _bid, _idx, instr in enumerate_call_sites(func)}
        self._site_id_cache[func.name] = (func, sites)
        return sites

    def _eval(self, func: Function, args: List[object]) -> object:
        entry = func.entry_block()
        if len(args) != len(entry.params):
            raise VMTrap(f"{func.name}: expected {len(entry.params)} args, "
                         f"got {len(args)}")
        env: Dict[int, object] = {}
        for (param, _), value in zip(entry.params, args):
            env[param] = value

        stats = self.stats
        fuel_limit = self.fuel_limit
        blocks = func.blocks
        block = entry
        memory = self.memory
        count_backedges = self.count_backedges
        backedges = self._loop_backedges(func) if count_backedges else None

        while True:
            for instr in block.instrs:
                stats.fuel += 1
                op = instr.op
                # --- constants -------------------------------------------
                if op == "iconst":
                    env[instr.result] = instr.imm
                elif op == "fconst":
                    env[instr.result] = instr.imm
                # --- integer binops --------------------------------------
                elif op == "iadd":
                    env[instr.result] = (env[instr.args[0]] +
                                         env[instr.args[1]]) & MASK64
                elif op == "isub":
                    env[instr.result] = (env[instr.args[0]] -
                                         env[instr.args[1]]) & MASK64
                elif op == "imul":
                    env[instr.result] = (env[instr.args[0]] *
                                         env[instr.args[1]]) & MASK64
                elif op == "idiv_s":
                    a = to_signed(env[instr.args[0]])
                    b = to_signed(env[instr.args[1]])
                    if b == 0:
                        raise VMTrap("integer divide by zero")
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    env[instr.result] = wrap_i64(q)
                elif op == "idiv_u":
                    a, b = env[instr.args[0]], env[instr.args[1]]
                    if b == 0:
                        raise VMTrap("integer divide by zero")
                    env[instr.result] = a // b
                elif op == "irem_s":
                    a = to_signed(env[instr.args[0]])
                    b = to_signed(env[instr.args[1]])
                    if b == 0:
                        raise VMTrap("integer remainder by zero")
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    env[instr.result] = wrap_i64(a - q * b)
                elif op == "irem_u":
                    a, b = env[instr.args[0]], env[instr.args[1]]
                    if b == 0:
                        raise VMTrap("integer remainder by zero")
                    env[instr.result] = a % b
                elif op == "iand":
                    env[instr.result] = env[instr.args[0]] & env[instr.args[1]]
                elif op == "ior":
                    env[instr.result] = env[instr.args[0]] | env[instr.args[1]]
                elif op == "ixor":
                    env[instr.result] = env[instr.args[0]] ^ env[instr.args[1]]
                elif op == "ishl":
                    env[instr.result] = (env[instr.args[0]] <<
                                         (env[instr.args[1]] & 63)) & MASK64
                elif op == "ishr_u":
                    env[instr.result] = env[instr.args[0]] >> (
                        env[instr.args[1]] & 63)
                elif op == "ishr_s":
                    env[instr.result] = wrap_i64(
                        to_signed(env[instr.args[0]]) >>
                        (env[instr.args[1]] & 63))
                # --- integer comparisons ---------------------------------
                elif op == "ieq":
                    env[instr.result] = int(env[instr.args[0]] ==
                                            env[instr.args[1]])
                elif op == "ine":
                    env[instr.result] = int(env[instr.args[0]] !=
                                            env[instr.args[1]])
                elif op == "ilt_s":
                    env[instr.result] = int(to_signed(env[instr.args[0]]) <
                                            to_signed(env[instr.args[1]]))
                elif op == "ilt_u":
                    env[instr.result] = int(env[instr.args[0]] <
                                            env[instr.args[1]])
                elif op == "ile_s":
                    env[instr.result] = int(to_signed(env[instr.args[0]]) <=
                                            to_signed(env[instr.args[1]]))
                elif op == "ile_u":
                    env[instr.result] = int(env[instr.args[0]] <=
                                            env[instr.args[1]])
                elif op == "igt_s":
                    env[instr.result] = int(to_signed(env[instr.args[0]]) >
                                            to_signed(env[instr.args[1]]))
                elif op == "igt_u":
                    env[instr.result] = int(env[instr.args[0]] >
                                            env[instr.args[1]])
                elif op == "ige_s":
                    env[instr.result] = int(to_signed(env[instr.args[0]]) >=
                                            to_signed(env[instr.args[1]]))
                elif op == "ige_u":
                    env[instr.result] = int(env[instr.args[0]] >=
                                            env[instr.args[1]])
                # --- floats ----------------------------------------------
                elif op == "fadd":
                    env[instr.result] = env[instr.args[0]] + env[instr.args[1]]
                elif op == "fsub":
                    env[instr.result] = env[instr.args[0]] - env[instr.args[1]]
                elif op == "fmul":
                    env[instr.result] = env[instr.args[0]] * env[instr.args[1]]
                elif op == "fdiv":
                    b = env[instr.args[1]]
                    a = env[instr.args[0]]
                    if b == 0.0:
                        env[instr.result] = (math.nan if a == 0.0
                                             else math.copysign(math.inf, a) *
                                             math.copysign(1.0, b))
                    else:
                        env[instr.result] = a / b
                elif op == "fneg":
                    env[instr.result] = -env[instr.args[0]]
                elif op == "fabs":
                    env[instr.result] = abs(env[instr.args[0]])
                elif op == "fsqrt":
                    a = env[instr.args[0]]
                    env[instr.result] = math.sqrt(a) if a >= 0.0 else math.nan
                elif op == "ffloor":
                    env[instr.result] = float(math.floor(env[instr.args[0]]))
                elif op == "feq":
                    env[instr.result] = int(env[instr.args[0]] ==
                                            env[instr.args[1]])
                elif op == "fne":
                    env[instr.result] = int(env[instr.args[0]] !=
                                            env[instr.args[1]])
                elif op == "flt":
                    env[instr.result] = int(env[instr.args[0]] <
                                            env[instr.args[1]])
                elif op == "fle":
                    env[instr.result] = int(env[instr.args[0]] <=
                                            env[instr.args[1]])
                elif op == "fgt":
                    env[instr.result] = int(env[instr.args[0]] >
                                            env[instr.args[1]])
                elif op == "fge":
                    env[instr.result] = int(env[instr.args[0]] >=
                                            env[instr.args[1]])
                # --- conversions -----------------------------------------
                elif op == "itof":
                    env[instr.result] = float(to_signed(env[instr.args[0]]))
                elif op == "ftoi":
                    a = env[instr.args[0]]
                    if math.isnan(a) or math.isinf(a):
                        raise VMTrap("invalid float-to-int conversion")
                    env[instr.result] = wrap_i64(int(a))
                elif op == "bits_ftoi":
                    import struct
                    env[instr.result] = int.from_bytes(
                        struct.pack("<d", env[instr.args[0]]), "little")
                elif op == "bits_itof":
                    import struct
                    env[instr.result] = struct.unpack(
                        "<d", (env[instr.args[0]] & MASK64).to_bytes(
                            8, "little"))[0]
                # --- select ----------------------------------------------
                elif op == "select":
                    env[instr.result] = (env[instr.args[1]]
                                         if env[instr.args[0]] != 0
                                         else env[instr.args[2]])
                # --- memory ----------------------------------------------
                elif op == "load64":
                    stats.loads += 1
                    addr = env[instr.args[0]] + instr.imm
                    if addr < 0 or addr + 8 > len(memory):
                        raise VMTrap(f"oob load64 at {addr:#x}")
                    env[instr.result] = int.from_bytes(
                        memory[addr:addr + 8], "little")
                elif op == "store64":
                    stats.stores += 1
                    addr = env[instr.args[0]] + instr.imm
                    if addr < 0 or addr + 8 > len(memory):
                        raise VMTrap(f"oob store64 at {addr:#x}")
                    memory[addr:addr + 8] = env[instr.args[1]].to_bytes(
                        8, "little")
                elif op in ("load8_u", "load8_s", "load16_u", "load16_s",
                            "load32_u", "load32_s"):
                    stats.loads += 1
                    size = {"8": 1, "1": 2, "3": 4}[op[4]]
                    addr = env[instr.args[0]] + instr.imm
                    if addr < 0 or addr + size > len(memory):
                        raise VMTrap(f"oob {op} at {addr:#x}")
                    raw = int.from_bytes(memory[addr:addr + size], "little")
                    if op.endswith("_s"):
                        bits = size * 8
                        if raw >= 1 << (bits - 1):
                            raw -= 1 << bits
                        raw = wrap_i64(raw)
                    env[instr.result] = raw
                elif op in ("store8", "store16", "store32"):
                    stats.stores += 1
                    size = {"store8": 1, "store16": 2, "store32": 4}[op]
                    addr = env[instr.args[0]] + instr.imm
                    if addr < 0 or addr + size > len(memory):
                        raise VMTrap(f"oob {op} at {addr:#x}")
                    memory[addr:addr + size] = (
                        env[instr.args[1]] & ((1 << (size * 8)) - 1)
                    ).to_bytes(size, "little")
                elif op == "loadf64":
                    stats.loads += 1
                    import struct
                    addr = env[instr.args[0]] + instr.imm
                    if addr < 0 or addr + 8 > len(memory):
                        raise VMTrap(f"oob loadf64 at {addr:#x}")
                    env[instr.result] = struct.unpack_from(
                        "<d", memory, addr)[0]
                elif op == "storef64":
                    stats.stores += 1
                    import struct
                    addr = env[instr.args[0]] + instr.imm
                    if addr < 0 or addr + 8 > len(memory):
                        raise VMTrap(f"oob storef64 at {addr:#x}")
                    struct.pack_into("<d", memory, addr, env[instr.args[1]])
                # --- calls -----------------------------------------------
                elif op == "call":
                    stats.calls += 1
                    result = self.call(instr.imm,
                                       [env[a] for a in instr.args])
                    if instr.result is not None:
                        env[instr.result] = result
                elif op == "call_indirect":
                    index = env[instr.args[0]]
                    if self.site_profile_hook is not None and \
                            func.name in self.site_profile_functions:
                        self.site_profile_hook(
                            func.name,
                            self._call_sites(func)[id(instr)], index)
                    result = self.call_table(
                        index, [env[a] for a in instr.args[1:]])
                    if instr.result is not None:
                        env[instr.result] = result
                # --- globals ---------------------------------------------
                elif op == "global_get":
                    env[instr.result] = self.globals[instr.imm]
                elif op == "global_set":
                    self.globals[instr.imm] = env[instr.args[0]]
                # --- speculation -----------------------------------------
                elif op == "guard":
                    imm = instr.imm
                    if isinstance(imm, tuple):
                        if env[instr.args[0]] not in imm[1]:
                            if len(imm) == 3:
                                # Resuming guard: record the miss and fall
                                # through to the materialized slow path.
                                self.notify_site_miss(func.name, imm[0])
                            else:
                                raise GuardFailed(
                                    func.name,
                                    f"{func.name}: guard at site {imm[0]} "
                                    f"expected one of {imm[1]}, "
                                    f"got {env[instr.args[0]]}",
                                    site=imm[0])
                    elif env[instr.args[0]] != imm:
                        raise GuardFailed(
                            func.name,
                            f"{func.name}: guard expected {imm}, "
                            f"got {env[instr.args[0]]}")
                else:
                    raise VMTrap(f"unimplemented opcode {op}")

            if fuel_limit is not None and stats.fuel > fuel_limit:
                raise OutOfFuel(f"fuel limit {fuel_limit} exceeded")

            # --- terminator ---------------------------------------------
            stats.fuel += 1
            term = block.terminator
            if isinstance(term, Jump):
                call = term.target
            elif isinstance(term, BrIf):
                call = term.if_true if env[term.cond] != 0 else term.if_false
            elif isinstance(term, BrTable):
                index = env[term.index]
                if 0 <= index < len(term.cases):
                    call = term.cases[index]
                else:
                    call = term.default
            elif isinstance(term, Ret):
                if term.args:
                    return env[term.args[0]]
                return None
            elif isinstance(term, Trap):
                raise VMTrap(term.message)
            else:
                raise VMTrap(f"block{block.id} not terminated")

            if count_backedges and (block.id, call.block) in backedges:
                # Tier-0 loop profiling: retreating edges in reverse
                # post-order are the real loop backedges, independent of
                # how block ids happen to be numbered.
                stats.backedges += 1
            target = blocks[call.block]
            if call.args:
                values = [env[a] for a in call.args]
                for (param, _), value in zip(target.params, values):
                    env[param] = value
            block = target
