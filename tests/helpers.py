"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.frontend import compile_source
from repro.ir import Module, verify_module
from repro.vm import VM


def build_module(source: str, memory_size: int = 1 << 16,
                 externs: Optional[Dict[str, object]] = None,
                 verify: bool = True) -> Module:
    """Compile mini-C source into a fresh verified module."""
    module = Module(memory_size=memory_size)
    program = compile_source(source)
    program.add_to_module(module, externs=externs)
    if verify:
        verify_module(module)
    return module


def run(source: str, func: str, args=(), memory_size: int = 1 << 16,
        externs: Optional[Dict[str, object]] = None):
    """Compile and execute one function; returns its result."""
    module = build_module(source, memory_size, externs)
    vm = VM(module)
    return vm.call(func, list(args))


def run_with_stats(source: str, func: str, args=(),
                   memory_size: int = 1 << 16,
                   externs: Optional[Dict[str, object]] = None):
    module = build_module(source, memory_size, externs)
    vm = VM(module)
    result = vm.call(func, list(args))
    return result, vm.stats
