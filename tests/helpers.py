"""Shared helpers for the test suite."""

from __future__ import annotations

import difflib
import os
from typing import Dict, Optional, Tuple

from repro.frontend import compile_source
from repro.ir import Module, verify_module
from repro.vm import VM

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def check_golden(request, name: str, text: str) -> None:
    """Diff ``text`` against ``tests/golden/<name>.txt`` (or rewrite the
    snapshot when running with ``--update-golden``)."""
    import pytest

    path = os.path.join(GOLDEN_DIR, name + ".txt")
    if request.config.getoption("--update-golden"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return
    assert os.path.exists(path), (
        f"golden file {path} missing; run with --update-golden to create")
    with open(path) as handle:
        expected = handle.read().rstrip("\n")
    if text.rstrip("\n") != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), text.rstrip("\n").splitlines(),
            fromfile=f"golden/{name}.txt", tofile="current", lineterm=""))
        pytest.fail(
            f"golden output for {name!r} changed; run --update-golden if "
            f"intentional:\n{diff}")


def build_module(source: str, memory_size: int = 1 << 16,
                 externs: Optional[Dict[str, object]] = None,
                 verify: bool = True) -> Module:
    """Compile mini-C source into a fresh verified module."""
    module = Module(memory_size=memory_size)
    program = compile_source(source)
    program.add_to_module(module, externs=externs)
    if verify:
        verify_module(module)
    return module


def run(source: str, func: str, args=(), memory_size: int = 1 << 16,
        externs: Optional[Dict[str, object]] = None):
    """Compile and execute one function; returns its result."""
    module = build_module(source, memory_size, externs)
    vm = VM(module)
    return vm.call(func, list(args))


def run_with_stats(source: str, func: str, args=(),
                   memory_size: int = 1 << 16,
                   externs: Optional[Dict[str, object]] = None):
    module = build_module(source, memory_size, externs)
    vm = VM(module)
    result = vm.call(func, list(args))
    return result, vm.stats
