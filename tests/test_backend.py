"""Property tests for the tier-2 Python backend (:mod:`repro.backend`).

The backend's contract is observational equivalence with the IR VM:
identical results, identical prints, identical trap kinds/messages, and
identical deterministic fuel on every execution that completes or traps
at a block boundary.  These tests pin that contract on three axes the
differential corpus does not isolate:

* random verified functions (via the mini-C frontend) over adversarial
  i64 inputs, including both trap arms of division/remainder;
* signedness/wraparound at the ``2**63`` boundary for every integer
  binop and comparison, one op at a time;
* ``br_table`` out-of-range defaulting (including huge indices) and
  branch-argument passing on table edges;
* fuel determinism and ``OutOfFuel`` agreement under a fuel limit;
* per-function fallback for constructs the emitter rejects.
"""

import random

import pytest

from repro.backend import (
    UnsupportedConstruct,
    compile_function,
    compile_functions,
)
from repro.core.specialize import SpecializeOptions
from repro.ir.function import Function, Signature
from repro.ir.instructions import BlockCall, BrTable, Instr, Jump, Ret
from repro.ir.module import Module
from repro.ir.types import I64
from repro.min.interp import PROGRAM_BASE, build_min_module, specialize_min
from repro.min.harness import sum_to_n_program
from repro.vm import VM, OutOfFuel, VMTrap

from tests.helpers import build_module

TWO63 = 1 << 63
MASK64 = (1 << 64) - 1

BOUNDARY_VALUES = (0, 1, 2, TWO63 - 1, TWO63, TWO63 + 1, MASK64)


def _run_both(module: Module, name: str, args,
              fuel_limit=None):
    """Run one function on the IR VM and as compiled Python; return
    ``((status, payload, fuel), ...)`` for each backend."""
    compiled = compile_function(module.functions[name], module)

    def run(install: bool):
        vm = VM(module, fuel_limit=fuel_limit)
        if install:
            vm.install_compiled({name: compiled.pyfunc})
        try:
            result = vm.call(name, list(args))
            return ("ok", result, vm.stats.fuel)
        except VMTrap as trap:
            return ("trap", str(trap), None)
        except OutOfFuel:
            return ("out-of-fuel", None, None)

    return run(False), run(True)


# ---------------------------------------------------------------------------
# Random verified functions.
# ---------------------------------------------------------------------------

_BINOPS = ("+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=")
_CALLOPS = ("sdiv", "srem", "slt", "sle")


def _expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.45:
            return rng.choice(names)
        if roll < 0.8:
            return str(rng.randint(0, 9))
        return str(rng.choice(BOUNDARY_VALUES))
    left = _expr(rng, names, depth - 1)
    right = _expr(rng, names, depth - 1)
    roll = rng.random()
    if roll < 0.6:
        return f"({left} {rng.choice(_BINOPS)} {right})"
    if roll < 0.75:
        # Division/remainder keep possibly-zero divisors: trap-message
        # equality is part of the property.
        return f"({left} {rng.choice(('/', '%'))} {right})"
    if roll < 0.9:
        return f"{rng.choice(_CALLOPS)}({left}, {right})"
    return f"({left} {rng.choice(('<<', '>>'))} ({right} & 63))"


def _random_source(rng: random.Random) -> str:
    names = ["x", "y", "a", "b"]
    body = [f"  u64 a = {_expr(rng, ['x', 'y'], 2)};",
            f"  u64 b = {_expr(rng, ['x', 'y'], 2)};",
            f"  u64 i = {rng.randint(1, 6)};",
            "  while (i != 0) {",
            f"    a = {_expr(rng, names + ['i'], 2)};",
            f"    if ({_expr(rng, names, 1)} < {_expr(rng, names, 1)}) {{",
            f"      b = {_expr(rng, names, 2)};",
            "    } else {",
            f"      a = {_expr(rng, names + ['i'], 1)};",
            "    }",
            "    i = i - 1;",
            "  }",
            "  return a + b;"]
    return "u64 f(u64 x, u64 y) {\n" + "\n".join(body) + "\n}\n"


@pytest.mark.parametrize("seed", range(20))
def test_random_function_differential(seed):
    rng = random.Random(0xBAC0 + seed)
    module = build_module(_random_source(rng))
    inputs = [(0, 1), (TWO63, TWO63 - 1), (MASK64, 12345),
              (rng.randint(0, MASK64), rng.randint(0, MASK64))]
    for args in inputs:
        got_vm, got_py = _run_both(module, "f", args)
        if got_vm[0] == "ok":
            assert got_py == got_vm, (
                f"seed {seed} args {args}: vm={got_vm!r} py={got_py!r}")
        else:
            # Traps must agree in kind and message; fuel may legitimately
            # differ on a mid-block trap (the backend charges per block).
            assert got_py[:2] == got_vm[:2], (
                f"seed {seed} args {args}: vm={got_vm!r} py={got_py!r}")


# ---------------------------------------------------------------------------
# Signedness and wraparound at the 2**63 boundary, one op at a time.
# ---------------------------------------------------------------------------

_SINGLE_OPS = ["a + b", "a - b", "a * b", "a / b", "a % b",
               "sdiv(a, b)", "srem(a, b)",
               "a << (b & 63)", "a >> (b & 63)",
               "a < b", "a <= b", "a == b", "a != b",
               "slt(a, b)", "sle(a, b)"]


@pytest.mark.parametrize("op", _SINGLE_OPS)
def test_i64_boundary_semantics(op):
    module = build_module(f"u64 f(u64 a, u64 b) {{ return {op}; }}")
    for a in BOUNDARY_VALUES:
        for b in BOUNDARY_VALUES:
            got_vm, got_py = _run_both(module, "f", (a, b))
            if got_vm[0] == "ok":
                assert got_py == got_vm, (
                    f"{op} a={a} b={b}: vm={got_vm!r} py={got_py!r}")
                assert 0 <= got_vm[1] <= MASK64
            else:
                assert got_py[:2] == got_vm[:2], (
                    f"{op} a={a} b={b}: vm={got_vm!r} py={got_py!r}")


def test_sdiv_min_by_minus_one_wraps():
    """-2**63 / -1 wraps back to -2**63 (no Python bignum escape)."""
    module = build_module("u64 f(u64 a, u64 b) { return sdiv(a, b); }")
    got_vm, got_py = _run_both(module, "f", (TWO63, MASK64))
    assert got_vm == got_py
    assert got_vm[1] == TWO63


# ---------------------------------------------------------------------------
# BrTable out-of-range defaulting.
# ---------------------------------------------------------------------------

def _brtable_function(ncases: int) -> Module:
    """``f(x)``: br_table over x with per-edge branch arguments; case i
    returns 100 + i, out-of-range returns 999."""
    func = Function("bt", Signature((I64,), (I64,)))
    entry = func.new_block()
    func.entry = entry.id
    index = func.add_block_param(entry, I64)
    cases = []
    consts = []
    for i in range(ncases):
        cid = func.new_value(I64)
        entry.instrs.append(Instr("iconst", cid, (), 100 + i, I64))
        consts.append(cid)
    default_const = func.new_value(I64)
    entry.instrs.append(Instr("iconst", default_const, (), 999, I64))

    ret_block = func.new_block()
    param = func.add_block_param(ret_block, I64)
    ret_block.terminator = Ret((param,))

    for cid in consts:
        case_block = func.new_block()
        case_block.terminator = Jump(BlockCall(ret_block.id, (cid,)))
        cases.append(BlockCall(case_block.id, ()))
    entry.terminator = BrTable(index, cases,
                               BlockCall(ret_block.id, (default_const,)))

    module = Module(memory_size=4096)
    module.add_function(func)
    return module


@pytest.mark.parametrize("ncases", [0, 1, 3, 7])
def test_brtable_out_of_range_defaulting(ncases):
    module = _brtable_function(ncases)
    probes = list(range(ncases + 2)) + [TWO63, MASK64]
    for x in probes:
        got_vm, got_py = _run_both(module, "bt", (x,))
        assert got_vm == got_py, f"x={x}: vm={got_vm!r} py={got_py!r}"
        expected = 100 + x if x < ncases else 999
        assert got_vm[1] == expected


# ---------------------------------------------------------------------------
# Fuel determinism and OutOfFuel agreement.
# ---------------------------------------------------------------------------

def _min_residual():
    program = sum_to_n_program(50)
    module = build_min_module(program)
    func = specialize_min(module, program, use_intrinsics=False,
                          options=SpecializeOptions(backend="vm"),
                          name="fuel_probe")
    return module, func, [PROGRAM_BASE, len(program.words), 0]


def test_fuel_determinism_on_residual():
    module, func, args = _min_residual()
    got_vm, got_py = _run_both(module, func.name, args)
    assert got_vm[0] == got_py[0] == "ok"
    assert got_vm[1] == got_py[1] == 50 * 51 // 2
    assert got_vm[2] == got_py[2], "backend fuel must match the VM"


def test_out_of_fuel_agreement():
    module, func, args = _min_residual()
    full_fuel = _run_both(module, func.name, args)[0][2]
    for limit in (1, full_fuel // 3):
        got_vm, got_py = _run_both(module, func.name, args,
                                   fuel_limit=limit)
        assert got_vm[0] == got_py[0] == "out-of-fuel", (
            f"limit {limit}: vm={got_vm!r} py={got_py!r}")
    # Near the exact total the VM may or may not hit the limit (it only
    # checks at block boundaries) — the backend must agree either way.
    for limit in range(max(full_fuel - 4, 1), full_fuel + 1):
        got_vm, got_py = _run_both(module, func.name, args,
                                   fuel_limit=limit)
        assert got_vm == got_py, (
            f"limit {limit}: vm={got_vm!r} py={got_py!r}")
    got_vm, got_py = _run_both(module, func.name, args,
                               fuel_limit=full_fuel)
    assert got_vm[0] == got_py[0] == "ok"


# ---------------------------------------------------------------------------
# Fallback for unsupported constructs.
# ---------------------------------------------------------------------------

_CALLING_SRC = """
u64 helper(u64 x) {
  u64 i = x;
  u64 s = 0;
  while (i != 0) { s = s + i * 3; i = i - 1; }
  return s;
}
u64 f(u64 n) {
  u64 t = helper(n) + helper(n + 1) * 2;
  return t + 7;
}
"""


def test_out_of_fuel_agreement_across_calls():
    """Fuel-limit checks inside a *callee* observe the shared counter,
    so the backend must not pre-charge instructions that come after a
    call in the caller's block (the call here is mid-block, followed by
    arithmetic).  Sweep every limit and require exact agreement."""
    module = build_module(_CALLING_SRC)
    compiled, fallbacks = compile_functions(module)
    assert not fallbacks

    def run(install: bool, limit):
        vm = VM(module, fuel_limit=limit)
        if install:
            vm.install_compiled(compiled)
        try:
            return ("ok", vm.call("f", [9]), vm.stats.fuel)
        except OutOfFuel:
            return ("out-of-fuel", None, vm.stats.fuel)

    total = run(False, None)[2]
    for limit in range(1, total + 2):
        got_vm = run(False, limit)
        got_py = run(True, limit)
        assert got_vm == got_py, (
            f"limit {limit}: vm={got_vm!r} py={got_py!r}")


def test_unsupported_opcode_falls_back():
    func = Function("weird", Signature((), (I64,)))
    entry = func.new_block()
    func.entry = entry.id
    vid = func.new_value(I64)
    entry.instrs.append(Instr("iconst", vid, (), 1, I64))
    bogus = func.new_value(I64)
    entry.instrs.append(Instr("frobnicate", bogus, (vid,), None, I64))
    entry.terminator = Ret((bogus,))
    module = Module(memory_size=64)
    module.add_function(func)

    with pytest.raises(UnsupportedConstruct, match="frobnicate"):
        compile_function(func, module)
    compiled, fallbacks = compile_functions(module)
    assert compiled == {}
    assert fallbacks and fallbacks[0][0] == "weird"
    assert "frobnicate" in fallbacks[0][1]


def test_backend_option_validation_and_env(monkeypatch):
    with pytest.raises(ValueError, match="bad backend"):
        SpecializeOptions(backend="jit")
    with pytest.raises(ValueError, match="bad emit_mode"):
        SpecializeOptions(emit_mode="relooper")
    monkeypatch.setenv("REPRO_BACKEND", "py")
    assert SpecializeOptions().backend == "py"
    monkeypatch.delenv("REPRO_BACKEND")
    assert SpecializeOptions().backend == "vm"


# ---------------------------------------------------------------------------
# Float-literal bit exactness.
#
# ``fconst`` immediates travel through emitted *source text*, so the
# literal the emitter prints must reconstruct the exact IEEE-754 bit
# pattern the VM holds as a live float — including the sign of -0.0,
# both infinities, and every NaN payload.  ``bits_ftoi`` exposes the
# bits as an i64 on both tiers, making the comparison exact.
# ---------------------------------------------------------------------------

_FLOAT_BIT_PATTERNS = (
    0x0000000000000000,  # +0.0
    0x8000000000000000,  # -0.0 (repr must keep the sign)
    0x0000000000000001,  # smallest subnormal
    0x8000000000000001,  # -smallest subnormal
    0x000FFFFFFFFFFFFF,  # largest subnormal
    0x0010000000000000,  # smallest normal
    0x7FEFFFFFFFFFFFFF,  # largest finite
    0xFFEFFFFFFFFFFFFF,  # -largest finite
    0x7FF0000000000000,  # +inf
    0xFFF0000000000000,  # -inf
    0x7FF8000000000000,  # canonical quiet NaN
    0xFFF8000000000000,  # negative quiet NaN
    0x7FF8DEADBEEFCAFE,  # quiet NaN with payload
    0xFFFFFFFFFFFFFFFF,  # NaN, all payload bits set
    0x3FF0000000000000,  # 1.0
    0x3FB999999999999A,  # 0.1 (shortest-repr round-trip)
)


def _bits_to_float(bits: int) -> float:
    import struct
    return struct.unpack("<d", bits.to_bytes(8, "little"))[0]


def _fconst_bits_module(bits: int) -> Module:
    """A function returning ``bits_ftoi(fconst)`` for the given pattern."""
    from repro.ir import FunctionBuilder
    fb = FunctionBuilder("fbits", Signature((), (I64,)))
    v = fb.fconst(_bits_to_float(bits))
    fb.ret(fb.emit("bits_ftoi", (v,)))
    module = Module(memory_size=64)
    module.add_function(fb.finish())
    return module


def _fconst_roundtrip(bits: int):
    module = _fconst_bits_module(bits)
    vm_got = VM(module).call("fbits", [])
    for mode in ("structured", "dispatch"):
        compiled = compile_function(module.functions["fbits"], module,
                                    mode=mode)
        vm = VM(module)
        vm.install_compiled({"fbits": compiled.pyfunc})
        py_got = vm.call("fbits", [])
        assert py_got == vm_got == bits, (
            f"fconst bits {bits:#018x} ({mode}): vm={vm_got:#018x} "
            f"py={py_got:#018x}")


@pytest.mark.parametrize("bits", _FLOAT_BIT_PATTERNS,
                         ids=lambda b: f"{b:#018x}")
def test_fconst_bit_patterns_roundtrip(bits):
    _fconst_roundtrip(bits)


@pytest.mark.parametrize("seed", range(4))
def test_fconst_random_bit_patterns_roundtrip(seed):
    rng = random.Random(0xF10A7 + seed)
    for _ in range(64):
        _fconst_roundtrip(rng.getrandbits(64))


def test_float_literal_source_forms():
    """The emitter uses plain literals for finite values (including
    -0.0, whose repr keeps the sign) and the bit-pattern helper only
    for non-finite ones."""
    from repro.backend.emitter import _float_literal
    literal, needs = _float_literal(-0.0)
    assert literal == "-0.0" and not needs
    for bits in (0x7FF0000000000000, 0xFFF0000000000000,
                 0x7FF8DEADBEEFCAFE):
        literal, needs = _float_literal(_bits_to_float(bits))
        assert needs and literal == f"_bits_itof({bits:#x})"
