"""The chaos differential tier (PR 9): fault containment end to end.

The tier-up contract — tier 0 is always a correct fallback, so
compilation is *advisory* — implies a strong robustness property: under
**any** schedule of compile-stage failures, a serving worker must
produce bit-identical results to the pure interpreter, with zero
uncaught exceptions escaping the
:class:`~repro.pipeline.tiering.TieringController`.  This module
asserts exactly that, with seeded deterministic
:class:`~repro.pipeline.faults.FaultPlan` schedules:

* every injection seam individually, at rate 1.0 (a persistent outage
  of that one stage);
* randomized combined schedules across all seams (several seeds);
* the containment policies one by one — quarantine + backoff retry,
  permanent blacklist, the deopt-storm breaker, degraded stores, and
  process-pool rebuild/degrade;
* recovery: a quarantined function re-promotes once injection stops.

All runs use ``jobs=1`` engines (except the pool tests) so the per-seam
consult order — and therefore the firing schedule — is exactly
reproducible.
"""

import pytest

from repro.core.specialize import SpecializeOptions
from repro.min.fleet import (
    build_fleet_module,
    constant_program,
    make_endpoints,
    make_fleet_worker,
    serve,
    sum_squares_program,
)
from repro.min.harness import make_tiered_min, sum_to_n_program
from repro.min.interp import PROGRAM_BASE, build_min_module
from repro.pipeline.faults import SEAMS, FaultInjected, FaultPlan
from repro.pipeline.profiles import open_profile_store
from repro.vm import VM


def _args(program, value):
    return [PROGRAM_BASE, len(program.words), value]


def _endpoints():
    return make_endpoints([
        ("sum", sum_to_n_program(40)),
        ("squares", sum_squares_program(12)),
        ("admin", constant_program(77)),
    ])


def _traffic(endpoints, rounds=30):
    """A deterministic request schedule: two hot endpoints, one cold."""
    schedule = []
    for i in range(rounds):
        schedule.append((endpoints[0], i % 7))
        schedule.append((endpoints[1], i % 5))
        if i % 10 == 0:
            schedule.append((endpoints[2], 0))
    return schedule


def _reference_results(endpoints, traffic):
    """The pure-interpreter ground truth: a plain VM, no controller."""
    vm = VM(build_fleet_module(endpoints))
    return [vm.call("min_interp", ep.args(value)) for ep, value in traffic]


def _run_chaos_worker(plan, tmp_path, *, backend="py", rounds=30,
                      publish_every=0):
    """Serve the deterministic traffic through a tiered worker with the
    given fault plan; returns (results, controller, plan)."""
    endpoints = _endpoints()
    traffic = _traffic(endpoints, rounds)
    options = SpecializeOptions(backend=backend, fault_plan=plan,
                                cache_dir=str(tmp_path / "cache"))
    vm, controller = make_fleet_worker(endpoints, threshold=3,
                                       options=options)
    store = open_profile_store(options.cache_dir, fault_plan=plan)
    results = []
    for i, (endpoint, value) in enumerate(traffic):
        results.append(serve(vm, endpoint, value))
        if publish_every and i % publish_every == publish_every - 1:
            controller.publish_heat(store)
    return results, controller, _reference_results(endpoints, traffic)


# ---------------------------------------------------------------------------
# Every seam individually: a total outage of one pipeline stage.
# ---------------------------------------------------------------------------
class TestSeamOutages:
    @pytest.mark.parametrize("seam", ["specialize", "verify", "emit",
                                      "store_read", "store_write",
                                      "heat_merge"])
    def test_seam_outage_results_identical(self, tmp_path, seam):
        plan = FaultPlan.always(seam)
        results, controller, expected = _run_chaos_worker(
            plan, tmp_path, publish_every=8)
        assert results == expected
        # The seam was actually exercised under this configuration.
        assert plan.fired.get(seam, 0) > 0
        # Nothing escaped: the report renders and the controller is
        # still serving (implicit in the loop having completed).
        assert "tier" in controller.report()

    @pytest.mark.parametrize("seam", ["specialize", "verify"])
    def test_compile_outage_blacklists_hot_functions(self, tmp_path, seam):
        plan = FaultPlan.always(seam)
        results, controller, expected = _run_chaos_worker(plan, tmp_path)
        assert results == expected
        stats = controller.stats
        assert stats.compile_failures >= 3
        assert stats.blacklists >= 1
        for profile in controller.profiles.values():
            assert profile.tier == 0  # nothing ever installed
        assert "containment:" in controller.report()

    def test_store_write_outage_degrades_to_memory(self, tmp_path):
        plan = FaultPlan.always("store_write")
        results, controller, expected = _run_chaos_worker(plan, tmp_path)
        assert results == expected
        store = controller.compiler.engine.store
        assert store.degraded
        assert store.health()["memory_entries"] > 0
        # Promotions kept landing through the memory overlay.
        assert controller.stats.promotions >= 2
        engine_stats = controller.compiler.engine.stats
        assert engine_stats.store_degraded == 1
        assert engine_stats.store_write_failures >= 3
        assert "store_degraded=True" in controller.report()


# ---------------------------------------------------------------------------
# Randomized combined schedules (seeded, reproducible).
# ---------------------------------------------------------------------------
class TestCombinedChaos:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_randomized_faults_results_identical(self, tmp_path, seed):
        plan = FaultPlan(seed=seed,
                         rates={seam: 0.3 for seam in SEAMS})
        results, controller, expected = _run_chaos_worker(
            plan, tmp_path, publish_every=8)
        assert results == expected
        assert controller.report()  # observability survives chaos

    def test_same_seed_fires_identically(self, tmp_path):
        def fired(seed):
            plan = FaultPlan(seed=seed,
                             rates={seam: 0.4 for seam in SEAMS})
            _run_chaos_worker(plan, tmp_path / str(seed), publish_every=8)
            return dict(plan.consults), dict(plan.fired)

        first = fired(11)
        # A distinct tmp dir gives run 2 the same cold-store consult
        # sequence; same seed => same schedule.
        again = fired(11)
        assert first == again


# ---------------------------------------------------------------------------
# Quarantine, backoff, recovery, blacklist.
# ---------------------------------------------------------------------------
class TestQuarantine:
    def test_single_failure_quarantines_then_recovers(self):
        program = sum_to_n_program(30)
        plan = FaultPlan.once("specialize")
        vm, controller = make_tiered_min(
            program, threshold=2,
            options=SpecializeOptions(fault_plan=plan))
        ref = VM(build_min_module(program))
        results_ok = True
        for _ in range(20):
            results_ok &= (vm.call("min_interp", _args(program, 4))
                           == ref.call("min_interp", _args(program, 4)))
        assert results_ok
        profile = next(iter(controller.profiles.values()))
        stats = controller.stats
        assert stats.compile_failures == 1
        assert stats.quarantines == 1
        assert stats.quarantine_retries == 1
        assert stats.quarantine_recoveries == 1
        assert not profile.blacklisted
        assert profile.tier >= 1  # re-promoted after the backoff
        assert profile.compile_failures == 0  # reset on recovery

    def test_backoff_defers_retry(self):
        program = sum_to_n_program(2)
        plan = FaultPlan.once("specialize")
        vm, controller = make_tiered_min(
            program, threshold=4,
            options=SpecializeOptions(fault_plan=plan))
        profile = next(iter(controller.profiles.values()))
        while not controller.stats.compile_failures:
            vm.call("min_interp", _args(program, 1))
        target = profile.retry_at_score
        assert target is not None
        assert target >= profile.score(controller.backedge_weight) \
            + controller.threshold
        # The immediately-following call must NOT retry — the backoff is
        # a full threshold's worth of fresh heat away.
        vm.call("min_interp", _args(program, 1))
        assert controller.stats.quarantine_retries == 0
        assert profile.tier == 0
        # Once the heat is earned, the retry lands and succeeds.
        for _ in range(50):
            vm.call("min_interp", _args(program, 1))
            if controller.stats.quarantine_retries:
                break
        assert controller.stats.quarantine_retries == 1
        assert controller.stats.quarantine_recoveries == 1
        assert profile.tier >= 1
        # The retry fired only after the backoff score was reached.
        assert profile.score(controller.backedge_weight) >= target

    def test_persistent_failure_blacklists_permanently(self):
        program = sum_to_n_program(30)
        plan = FaultPlan.always("specialize")
        vm, controller = make_tiered_min(
            program, threshold=1,
            options=SpecializeOptions(fault_plan=plan))
        ref = VM(build_min_module(program))
        for _ in range(60):
            assert vm.call("min_interp", _args(program, 2)) == \
                ref.call("min_interp", _args(program, 2))
        profile = next(iter(controller.profiles.values()))
        assert profile.blacklisted
        assert profile.tier == 0
        assert controller.stats.blacklists == 1
        assert controller.stats.compile_failures == \
            controller.max_compile_failures
        failures = controller.stats.compile_failures
        # Blacklist is final: more heat never compiles again.
        for _ in range(20):
            vm.call("min_interp", _args(program, 2))
        assert controller.stats.compile_failures == failures

    def test_disarmed_plan_repromotes(self):
        program = sum_to_n_program(30)
        plan = FaultPlan.always("specialize")
        vm, controller = make_tiered_min(
            program, threshold=2,
            options=SpecializeOptions(fault_plan=plan))
        controller.max_compile_failures = 99  # quarantine, never blacklist
        ref = VM(build_min_module(program))
        for _ in range(10):
            assert vm.call("min_interp", _args(program, 3)) == \
                ref.call("min_interp", _args(program, 3))
        profile = next(iter(controller.profiles.values()))
        assert profile.tier == 0
        assert controller.stats.compile_failures >= 1
        plan.disarm()  # the outage ends
        for _ in range(300):
            assert vm.call("min_interp", _args(program, 3)) == \
                ref.call("min_interp", _args(program, 3))
            if profile.tier >= 1:
                break
        assert profile.tier >= 1  # recovered once injection stopped
        assert controller.stats.quarantine_recoveries == 1


# ---------------------------------------------------------------------------
# The deopt-storm breaker.
# ---------------------------------------------------------------------------
class TestStormBreaker:
    def test_storm_pins_function_generic(self):
        program = sum_to_n_program(25)
        vm, controller = make_tiered_min(
            program, threshold=2, speculate=True,
            options=SpecializeOptions(backend="vm"))
        controller.storm_deopts = 1  # one deopt = a storm
        ref = VM(build_min_module(program))
        for value in (3, 3, 9, 3, 9, 9, 4, 5):
            assert vm.call("min_interp", _args(program, value)) == \
                ref.call("min_interp", _args(program, value))
        profile = next(iter(controller.profiles.values()))
        assert profile.pinned_generic
        assert profile.tier == 0
        assert controller.stats.storm_pins == 1
        assert controller.stats.demotions == 1
        # Pinned means pinned: heat can never promote it again.
        promotions = controller.stats.promotions
        for _ in range(20):
            assert vm.call("min_interp", _args(program, 6)) == \
                ref.call("min_interp", _args(program, 6))
        assert controller.stats.promotions == promotions
        assert "storm_pins=1" in controller.report()

    def test_single_deopt_is_not_a_storm(self):
        program = sum_to_n_program(25)
        vm, controller = make_tiered_min(
            program, threshold=2, speculate=True,
            options=SpecializeOptions(backend="vm"))
        ref = VM(build_min_module(program))
        for value in (3, 3, 9, 3, 9, 9):
            assert vm.call("min_interp", _args(program, value)) == \
                ref.call("min_interp", _args(program, value))
        profile = next(iter(controller.profiles.values()))
        # Default thresholds: demote-once respecializes, no pin.
        assert not profile.pinned_generic
        assert profile.tier >= 1
        assert controller.stats.storm_pins == 0


# ---------------------------------------------------------------------------
# Process-pool containment (rebuild once, then degrade to threads).
# ---------------------------------------------------------------------------
class TestPoolContainment:
    def _worker(self, plan, tmp_path):
        endpoints = _endpoints()
        options = SpecializeOptions(
            backend="vm", jobs=2, pool="process", fault_plan=plan,
            cache_dir=str(tmp_path / "cache"))
        return endpoints, make_fleet_worker(endpoints, threshold=3,
                                            options=options)

    def test_broken_pool_rebuilds_once(self, tmp_path):
        plan = FaultPlan.once("pool_worker")
        endpoints, (vm, controller) = self._worker(plan, tmp_path)
        names = controller.promote_all()
        assert len(names) == len(endpoints)
        engine = controller.compiler.engine
        assert engine.stats.pool_rebuilds == 1
        assert engine.stats.pool_degradations == 0
        assert engine.pool == "process"  # still trusted after one rebuild
        traffic = _traffic(endpoints, rounds=6)
        assert [serve(vm, ep, v) for ep, v in traffic] == \
            _reference_results(endpoints, traffic)

    def test_persistently_broken_pool_degrades_to_threads(self, tmp_path):
        plan = FaultPlan.always("pool_worker")
        endpoints, (vm, controller) = self._worker(plan, tmp_path)
        names = controller.promote_all()
        assert len(names) == len(endpoints)  # thread fallback compiled all
        engine = controller.compiler.engine
        assert engine.stats.pool_rebuilds == 1
        assert engine.stats.pool_degradations == 1
        assert engine.pool == "thread"  # degraded for the session
        assert "pool_degradations=1" in controller.report()
        traffic = _traffic(endpoints, rounds=6)
        assert [serve(vm, ep, v) for ep, v in traffic] == \
            _reference_results(endpoints, traffic)


# ---------------------------------------------------------------------------
# Inert plans: the no-fault execution is unchanged.
# ---------------------------------------------------------------------------
class TestInertPlan:
    def test_inert_plan_matches_no_plan(self, tmp_path):
        endpoints = _endpoints()
        traffic = _traffic(endpoints)

        def run(plan, sub):
            options = SpecializeOptions(
                backend="py", fault_plan=plan,
                cache_dir=str(tmp_path / sub / "cache"))
            vm, controller = make_fleet_worker(endpoints, threshold=3,
                                               options=options)
            fuel = []
            results = []
            for endpoint, value in traffic:
                results.append(serve(vm, endpoint, value))
                fuel.append(vm.stats.fuel)
            return results, fuel, controller

        inert = FaultPlan(seed=5, rates={seam: 0.0 for seam in SEAMS})
        r_plan, f_plan, c_plan = run(inert, "a")
        r_none, f_none, c_none = run(None, "b")
        # Same results, same promotion schedule, same deterministic fuel.
        assert r_plan == r_none
        assert f_plan == f_none
        assert c_plan.stats.promotions == c_none.stats.promotions
        assert inert.total_fired() == 0
        assert c_plan.stats.compile_failures == 0

    def test_fault_plan_not_in_cache_key(self, tmp_path):
        """Artifacts written under a (non-firing) plan are byte-usable
        by a plain engine and vice versa: the plan is not keyed."""
        endpoints = _endpoints()
        traffic = _traffic(endpoints, rounds=10)
        cache = str(tmp_path / "cache")

        def run(plan):
            options = SpecializeOptions(backend="py", fault_plan=plan,
                                        cache_dir=cache)
            vm, controller = make_fleet_worker(endpoints, threshold=3,
                                               options=options)
            for endpoint, value in traffic:
                serve(vm, endpoint, value)
            return controller.compiler.engine.stats

        run(FaultPlan(seed=0, rates={"specialize": 0.0}))
        warm = run(None)
        assert warm.functions_specialized == 0  # pure artifact warm start
        assert warm.artifact_hits > 0
