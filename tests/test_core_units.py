"""Unit tests for weval's building blocks: contexts, the lattice,
constant memory, flow-state meets, and intrinsic registration."""

import pytest

from repro.core import context as ctx
from repro.core.intrinsics import INTRINSICS, intrinsic_name, register_weval_imports
from repro.core.lattice import Const, ConstMemoryImage, Dyn, fold_pure_op
from repro.core.state import (
    FlowState,
    LocalSlot,
    StackSlot,
    meet_states,
    unstable_slots,
)
from repro.ir import I64, F64, Module
from repro.ir.instructions import wrap_i64


class TestContexts:
    def test_push_update_pop(self):
        c = ctx.push(ctx.ROOT, 5)
        assert c == (("c", 5),)
        c = ctx.update(c, 9)
        assert c == (("c", 9),)
        assert ctx.pop(c) == ctx.ROOT

    def test_nesting(self):
        c = ctx.push(ctx.push(ctx.ROOT, 1), 2)
        assert ctx.update(c, 3) == (("c", 1), ("c", 3))
        assert ctx.pop(c) == (("c", 1),)

    def test_value_subcontexts_stripped_by_update(self):
        c = ctx.push_value(ctx.push(ctx.ROOT, 1), 7)
        assert c == (("c", 1), ("sv", 7))
        assert ctx.update(c, 2) == (("c", 2),)

    def test_pop_empty_raises(self):
        with pytest.raises(ValueError):
            ctx.pop(ctx.ROOT)

    def test_update_without_push_tolerated(self):
        assert ctx.update(ctx.ROOT, 4) == (("c", 4),)

    def test_describe(self):
        assert ctx.describe(ctx.ROOT) == "root"
        assert "c=3" in ctx.describe(ctx.push(ctx.ROOT, 3))


class TestAbsValEquality:
    """The hand-written ``__eq__`` must match the former frozen-dataclass
    semantics exactly: identity-or-``==`` per component, as tuple
    comparison does."""

    def test_interned_identity_fast_path(self):
        from repro.core.lattice import intern_const
        assert intern_const(7, I64) is intern_const(7, I64)
        assert Const(7, I64) == Const(7, I64)
        assert Const(7, I64) != Const(8, I64)
        assert Dyn(3, I64) == Dyn(3, I64)
        assert Dyn(3, I64) != Dyn(3, F64)
        assert Const(0, I64) != Dyn(0, I64)

    def test_signed_zero_stays_equal(self):
        assert Const(0.0, F64) == Const(-0.0, F64)
        assert hash(Const(0.0, F64)) == hash(Const(-0.0, F64))

    def test_nan_same_object_equal_distinct_objects_not(self):
        import math
        # Two Consts wrapping the *same* NaN object (the math.nan
        # singleton the constant folder returns) compare equal — tuple
        # comparison's per-element identity shortcut — so NaN-valued
        # entry states stay stable across specializer rebuilds.
        assert Const(math.nan, F64) == Const(math.nan, F64)
        other_nan = float("nan")
        assert Const(math.nan, F64) != Const(other_nan, F64)


class TestConstMemory:
    def test_reads_inside_ranges_fold(self):
        snapshot = bytearray(64)
        snapshot[8:16] = (1234).to_bytes(8, "little")
        image = ConstMemoryImage(bytes(snapshot), [(8, 16)])
        assert image.read(8, 8, signed=False) == 1234
        assert image.read(0, 8, signed=False) is None  # outside
        assert image.read(20, 8, signed=False) is None  # straddles end

    def test_signed_narrow_read(self):
        snapshot = bytes([0xFF] + [0] * 15)
        image = ConstMemoryImage(snapshot, [(0, 8)])
        assert image.read(0, 1, signed=True) == wrap_i64(-1)
        assert image.read(0, 1, signed=False) == 0xFF

    def test_range_validation(self):
        with pytest.raises(ValueError):
            ConstMemoryImage(bytes(8), [(0, 64)])


class TestFold:
    def test_division_by_zero_refuses(self):
        assert fold_pure_op("idiv_u", None, [5, 0]) is None
        assert fold_pure_op("irem_s", None, [5, 0]) is None

    def test_select(self):
        assert fold_pure_op("select", None, [1, 10, 20]) == 10
        assert fold_pure_op("select", None, [0, 10, 20]) == 20

    def test_float_bits_roundtrip(self):
        bits = fold_pure_op("bits_ftoi", None, [1.5])
        assert fold_pure_op("bits_itof", None, [bits]) == 1.5


def _meet(contributions, env_domain, naive=False, pinned=None):
    params = {}

    def param_for(slot, ty):
        return params.setdefault(slot, 1000 + len(params))

    return meet_states(contributions, env_domain, lambda v: I64,
                       param_for, naive=naive,
                       pinned_slots=pinned), params


class TestMeet:
    def test_agreeing_bindings_pass_through(self):
        a = FlowState()
        a.env[1] = Const(5, I64)
        b = FlowState()
        b.env[1] = Const(5, I64)
        result, params = _meet([(a, {}), (b, {})], {1})
        assert result.state.env[1] == Const(5, I64)
        assert not params

    def test_disagreeing_bindings_become_params(self):
        a = FlowState()
        a.env[1] = Const(5, I64)
        b = FlowState()
        b.env[1] = Const(6, I64)
        result, params = _meet([(a, {}), (b, {})], {1})
        assert isinstance(result.state.env[1], Dyn)
        assert ("env", 1) in params

    def test_overrides_take_precedence(self):
        a = FlowState()
        a.env[1] = Const(5, I64)
        result, _ = _meet([(a, {1: Const(9, I64)})], {1})
        assert result.state.env[1] == Const(9, I64)

    def test_registers_zero_fill(self):
        a = FlowState()
        a.regs[3] = Const(7, I64)
        b = FlowState()  # register 3 unwritten: defaults to 0
        result, params = _meet([(a, {}), (b, {})], set())
        assert isinstance(result.state.regs[3], Dyn)

    def test_locals_intersect_and_dirty_ors(self):
        a = FlowState()
        a.locals[0] = LocalSlot(Dyn(1, I64), Const(5, I64), True)
        a.locals[1] = LocalSlot(Dyn(2, I64), Const(6, I64), False)
        b = FlowState()
        b.locals[0] = LocalSlot(Dyn(1, I64), Const(5, I64), False)
        result, _ = _meet([(a, {}), (b, {})], set())
        assert 0 in result.state.locals and 1 not in result.state.locals
        assert result.state.locals[0].dirty  # OR of dirty flags

    def test_stack_depth_mismatch_drops_all(self):
        a = FlowState()
        a.stack.append(StackSlot(Dyn(1, I64), Const(5, I64), True))
        b = FlowState()
        result, _ = _meet([(a, {}), (b, {})], set())
        assert result.state.stack == []

    def test_naive_mode_parameterizes_everything(self):
        a = FlowState()
        a.env[1] = Const(5, I64)
        result, params = _meet([(a, {})], {1}, naive=True)
        assert isinstance(result.state.env[1], Dyn)
        assert params

    def test_pinned_slots_forced_to_params(self):
        a = FlowState()
        a.env[1] = Const(5, I64)
        a.env[2] = Const(6, I64)
        result, params = _meet([(a, {})], {1, 2},
                               pinned=({("env", 1)}))
        assert isinstance(result.state.env[1], Dyn)
        assert result.state.env[2] == Const(6, I64)  # unpinned stays const


class TestUnstableSlots:
    def test_detects_changed_env_and_stack(self):
        old = FlowState()
        old.env[1] = Const(5, I64)
        old.stack.append(StackSlot(Dyn(1, I64), Dyn(2, I64), False))
        new = FlowState()
        new.env[1] = Const(5, I64)
        new.stack.append(StackSlot(Dyn(1, I64), Dyn(3, I64), False))
        changed = unstable_slots(old, new)
        assert ("stk_val", 0) in changed
        assert ("env", 1) not in changed


class TestIntrinsicRegistry:
    def test_names_and_kinds(self):
        assert intrinsic_name("update_context") == "weval.update_context"
        assert INTRINSICS["weval.push"].kind == "state"
        assert INTRINSICS["weval.assert_const"].kind == "value"
        with pytest.raises(KeyError):
            intrinsic_name("bogus")

    def test_registration_is_idempotent(self):
        module = Module(memory_size=64)
        register_weval_imports(module)
        count = len(module.imports)
        register_weval_imports(module)
        assert len(module.imports) == count
        assert count == len(INTRINSICS)
