"""Differential tests: generic interpretation vs. specialized residual
code on seeded random programs — across both execution backends.

Fifty seeded random programs across the three guest frontends (Min ISA,
MiniLua, MiniJS) are each run three ways — under the generic interpreter
on the VM, as the specialized (first Futamura projection) residual
function interpreted by the IR VM, and as the same residual compiled to
native Python by the tier-2 backend (:mod:`repro.backend`) — and must
produce identical results, prints, and traps.  The backend comparison
runs in **both emit modes** (the structured/relooper emitter and the
flat dispatch-tree emitter), so the corpus is a three-way differential:
VM vs structured vs dispatch, with deterministic fuel compared wherever
the flow exposes it.  Every comparison is made at two optimization
levels: ``-O0`` (raw specializer output, no mid-end) and the full
default pipeline, so a miscompiling pass shows up as a divergence
between levels, a specializer bug shows up at both, and a backend bug
shows up as a VM-vs-py divergence at either level.

The **irreducible tier** builds seeded multi-entry cycles directly in
IR (no frontend emits them): the structured emitter must carve them
into per-region dispatch fallbacks (``dispatch_regions >= 1``) and
still agree with the VM and the dispatch emitter on results, traps,
``OutOfFuel``, and exact fuel.

The **tiered tier** runs the same seeded programs under profile-guided
dynamic tier-up (:mod:`repro.pipeline.tiering`) at the two degenerate
thresholds: ``float("inf")`` never promotes, so prints/traps/fuel must
be identical to the generic interpreter, and ``1`` promotes at the
first call boundary, so they must be identical to the pure-AOT flow —
the tiering machinery may move *when* compilation happens, never what
executes.  The Min tier additionally arms guarded value speculation
with an input that changes mid-workload, exercising the guard-failure
deopt path (identical results, exactly one demotion).

The **inlined tier** drives seeded hot call chains through a
first-class dispatcher under speculative inlining
(:mod:`repro.opt.inline`): inlining-off must stay bit-identical to the
existing staged tiered flow, inlining-on must preserve prints exactly
(some seeds switch callees mid-run, so the polymorphic site guard's
miss/demote path is exercised), and both emit modes must agree on fuel
within each configuration.

The generators are structured (bounded counted loops, forward skips,
guarded conditionals) so every program terminates; MiniLua programs
include integer division and remainder whose divisors may reach zero,
exercising trap equivalence.
"""

import dataclasses
import random

import pytest

from repro.backend import EMIT_MODES, compile_function
from repro.core.specialize import SpecializeOptions
from repro.jsvm import JSRuntime
from repro.luavm.runtime import LuaRuntime
from repro.min.harness import PyMinInterpreter, make_tiered_min
from repro.min.interp import PROGRAM_BASE, build_min_module, specialize_min
from repro.min.isa import assemble
from repro.vm import VM
from repro.vm.machine import VMTrap

N_MIN, N_LUA, N_JS = 24, 20, 6  # 50 programs total

OPT_LEVELS = {
    "O0": SpecializeOptions(optimize=False, backend="vm"),
    "full": SpecializeOptions(backend="vm"),
}

TIERED_OPTIONS = SpecializeOptions(backend="vm")
INF = float("inf")


# ---------------------------------------------------------------------------
# Min ISA
# ---------------------------------------------------------------------------

def random_min_program(rng: random.Random):
    """A random Min program with a bounded counted loop (register 7),
    forward skips, and input-dependent data flow (input lands in r5)."""
    lines = [("STORE_REG", 5)]  # capture the input accumulator
    for reg in range(4):
        lines.append(("LOAD_IMMEDIATE", rng.randint(0, 1 << 16)))
        lines.append(("STORE_REG", reg))
    lines.append(("LOAD_IMMEDIATE", rng.randint(1, 5)))
    lines.append(("STORE_REG", 7))
    lines.append(("label", "loop"))
    fresh = iter(range(1000))
    for _ in range(rng.randint(1, 6)):
        roll = rng.random()
        if roll < 0.15:
            lines.append(("LOAD_IMMEDIATE", rng.randint(-50, 1000)))
        elif roll < 0.40:
            lines.append((rng.choice(("ADD", "SUB", "MUL")),
                          rng.randint(0, 3), rng.randint(0, 3)))
        elif roll < 0.55:
            lines.append(("ADD_IMMEDIATE", rng.randint(-50, 50)))
        elif roll < 0.70:
            lines.append(("LOAD_REG", rng.choice((0, 1, 2, 3, 5))))
        elif roll < 0.85:
            lines.append(("STORE_REG", rng.randint(0, 3)))
        elif roll < 0.93:
            label = f"skip{next(fresh)}"
            lines.append(("JMPNZ", label))  # input-dependent forward skip
            lines.append(("ADD", rng.randint(0, 3), rng.randint(0, 3)))
            lines.append(("label", label))
        else:
            label = f"over{next(fresh)}"
            lines.append(("JMP", label))
            lines.append(("ADD_IMMEDIATE", 999))  # skipped dead code
            lines.append(("label", label))
    lines.extend([
        ("LOAD_REG", 7),
        ("ADD_IMMEDIATE", -1),
        ("STORE_REG", 7),
        ("JMPNZ", "loop"),
        ("ADD", rng.randint(0, 3), rng.randint(0, 5)),
        ("HALT",),
    ])
    return assemble(lines)


@pytest.mark.parametrize("seed", range(N_MIN))
def test_min_differential(seed):
    rng = random.Random(0xA11CE + seed)
    program = random_min_program(rng)
    use_intrinsics = bool(seed % 2)
    inputs = (0, rng.randint(1, 99))

    module = build_min_module(program)
    expected = {}
    for value in inputs:
        expected[value] = VM(module).call(
            "min_interp", [PROGRAM_BASE, len(program.words), value])
        # The pure-Python reference interpreter must agree too.
        assert PyMinInterpreter(program).run(value) == expected[value]

    for level, options in OPT_LEVELS.items():
        spec_module = build_min_module(program)
        func = specialize_min(spec_module, program, use_intrinsics,
                              options=options, name=f"spec_{level}")
        compiled = {mode: compile_function(func, spec_module, mode=mode)
                    for mode in EMIT_MODES}
        for value in inputs:
            vm = VM(spec_module)
            got = vm.call(
                func.name, [PROGRAM_BASE, len(program.words), value])
            assert got == expected[value], (
                f"seed {seed} level {level} input {value}: "
                f"specialized {got} != interpreted {expected[value]}")
            # Tier-2 backend, both emit modes: the same residual
            # compiled to Python must agree on the result *and* on
            # deterministic fuel (VM ≡ structured ≡ dispatch).
            for mode in EMIT_MODES:
                vm_py = VM(spec_module)
                vm_py.install_compiled({func.name: compiled[mode].pyfunc})
                got_py = vm_py.call(
                    func.name, [PROGRAM_BASE, len(program.words), value])
                assert got_py == expected[value], (
                    f"seed {seed} level {level} input {value} "
                    f"mode {mode}: py-compiled {got_py} != "
                    f"interpreted {expected[value]}")
                assert vm_py.stats.fuel == vm.stats.fuel, (
                    f"seed {seed} level {level} input {value} "
                    f"mode {mode}: backend fuel {vm_py.stats.fuel} != "
                    f"VM fuel {vm.stats.fuel}")


@pytest.mark.parametrize("seed", range(N_MIN))
def test_min_tiered(seed):
    """Tiered tier: threshold ∞ ≡ interp, threshold 1 ≡ AOT (fuel and
    results), plus a guard-failure deopt exercised via speculation."""
    rng = random.Random(0xA11CE + seed)
    program = random_min_program(rng)
    use_intrinsics = bool(seed % 2)
    inputs = (0, rng.randint(1, 99))
    args = lambda value: [PROGRAM_BASE, len(program.words), value]  # noqa: E731

    # References: cumulative fuel over both inputs on one VM each.
    module = build_min_module(program)
    vm_interp = VM(module)
    expected = [vm_interp.call("min_interp", args(v)) for v in inputs]
    aot_module = build_min_module(program)
    func = specialize_min(aot_module, program, use_intrinsics,
                          options=TIERED_OPTIONS, name="spec_ref")
    vm_aot = VM(aot_module)
    aot_results = [vm_aot.call(func.name, args(v)) for v in inputs]
    assert aot_results == expected

    # Threshold ∞: pure tier 0, identical to the generic interpreter.
    vm_inf, controller_inf = make_tiered_min(
        program, threshold=INF, use_intrinsics=use_intrinsics,
        options=TIERED_OPTIONS)
    assert [vm_inf.call("min_interp", args(v)) for v in inputs] == expected
    assert vm_inf.stats.fuel == vm_interp.stats.fuel, (
        f"seed {seed}: tiered-inf fuel {vm_inf.stats.fuel} != interp "
        f"{vm_interp.stats.fuel}")
    assert controller_inf.stats.promotions == 0

    # Threshold 1: promoted at the first call boundary, identical to AOT.
    vm_one, controller_one = make_tiered_min(
        program, threshold=1, use_intrinsics=use_intrinsics,
        options=TIERED_OPTIONS)
    assert [vm_one.call("min_interp", args(v)) for v in inputs] == expected
    assert vm_one.stats.fuel == vm_aot.stats.fuel, (
        f"seed {seed}: tiered-1 fuel {vm_one.stats.fuel} != AOT "
        f"{vm_aot.stats.fuel}")
    assert controller_one.stats.promotions == 1

    # Guard-failure deopt: speculate on the input seen in the first two
    # calls, then change it — the guard must fail, the call must fall
    # back to the generic interpreter with identical results, and the
    # function must demote (and respecialize) exactly once.
    stable, changed = inputs[1], inputs[1] + 1
    vm_spec, controller = make_tiered_min(
        program, threshold=2, speculate=True,
        use_intrinsics=use_intrinsics, options=TIERED_OPTIONS)
    plain = VM(build_min_module(program))
    for value in (stable, stable, changed, changed):
        got = vm_spec.call("min_interp", args(value))
        want = plain.call("min_interp", args(value))
        assert got == want, (
            f"seed {seed}: speculative tiered {got} != interp {want} "
            f"for input {value}")
    assert controller.stats.speculative_promotions == 1
    assert controller.stats.deopts >= 1
    assert controller.stats.demotions == 1  # demotes exactly once


# ---------------------------------------------------------------------------
# MiniLua
# ---------------------------------------------------------------------------

def _lua_expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return str(rng.randint(-9, 9))
        return rng.choice(names)
    op = rng.choice(("+", "-", "*", "+", "-", "*", "/", "%"))
    left = _lua_expr(rng, names, depth - 1)
    right = _lua_expr(rng, names, depth - 1)
    # Division and remainder keep their random (possibly zero) divisors:
    # trap equivalence is part of the differential contract.
    return f"({left} {op} {right})"


def _lua_cond(rng: random.Random, names) -> str:
    cmp_op = rng.choice(("<", "<=", ">", ">=", "==", "~="))
    base = (f"{_lua_expr(rng, names, 1)} {cmp_op} "
            f"{_lua_expr(rng, names, 1)}")
    roll = rng.random()
    if roll < 0.2:
        return f"not ({base})"
    if roll < 0.4:
        other = (f"{rng.choice(names)} "
                 f"{rng.choice(('<', '~=', '>='))} {rng.randint(-5, 5)}")
        return f"({base}) {rng.choice(('and', 'or'))} ({other})"
    return base


def _lua_stmts(rng: random.Random, names, counters, depth: int):
    lines = []
    for _ in range(rng.randint(1, 4)):
        roll = rng.random()
        if roll < 0.45 or depth <= 0:
            lines.append(f"{rng.choice(names)} = "
                         f"{_lua_expr(rng, names, 2)}")
        elif roll < 0.6:
            lines.append(f"print({_lua_expr(rng, names, 2)})")
        elif roll < 0.8:
            body = _lua_stmts(rng, names, counters, depth - 1)
            orelse = _lua_stmts(rng, names, counters, depth - 1)
            lines.append(f"if {_lua_cond(rng, names)} then")
            lines.extend("  " + s for s in body)
            lines.append("else")
            lines.extend("  " + s for s in orelse)
            lines.append("end")
        elif roll < 0.9 and counters:
            counter = counters.pop()
            body = _lua_stmts(rng, names, counters, depth - 1)
            lines.append(f"{counter} = {rng.randint(1, 4)}")
            lines.append(f"while {counter} > 0 do")
            lines.extend("  " + s for s in body)
            lines.append(f"  {counter} = {counter} - 1")
            lines.append("end")
        else:
            var = f"k{rng.randint(0, 99)}"
            body = _lua_stmts(rng, names, counters, depth - 1)
            lines.append(f"for {var} = 1, {rng.randint(1, 4)} do")
            lines.extend("  " + s for s in body)
            lines.append("end")
    return lines


def random_lua_chunk(rng: random.Random) -> str:
    names = ["a", "b", "c", "d"]
    counters = ["t1", "t2"]
    lines = []
    if rng.random() < 0.6:
        lines.append("function helper(x, y)")
        lines.append(f"  local r = {_lua_expr(rng, ['x', 'y'], 2)}")
        lines.append(f"  if {_lua_cond(rng, ['x', 'y', 'r'])} then")
        lines.append(f"    r = {_lua_expr(rng, ['x', 'y', 'r'], 1)}")
        lines.append("  end")
        lines.append("  return r")
        lines.append("end")
        names.append("helper_result")
    for name in names:
        lines.append(f"local {name} = {rng.randint(-9, 9)}")
    for counter in counters:
        lines.append(f"local {counter} = 0")
    lines.extend(_lua_stmts(rng, names[:4], list(counters), 2))
    if "helper_result" in names:
        lines.append(f"helper_result = helper({_lua_expr(rng, names[:4], 1)},"
                     f" {_lua_expr(rng, names[:4], 1)})")
    lines.append(f"print({' + '.join(names)})")
    return "\n".join(lines)


def _run_lua(source: str, aot: bool, options=None, backend=None):
    runtime = LuaRuntime(source)
    try:
        if aot:
            runtime.aot_compile(options)
            vm = runtime.run_aot(backend)
        else:
            vm = runtime.run_interpreted()
        return ("ok", vm.result, tuple(runtime.printed))
    except VMTrap:
        return ("trap", None, tuple(runtime.printed))


@pytest.mark.parametrize("seed", range(N_LUA))
def test_lua_differential(seed):
    rng = random.Random(0xB0B + seed)
    source = random_lua_chunk(rng)
    expected = _run_lua(source, aot=False)
    for level, options in OPT_LEVELS.items():
        got = _run_lua(source, aot=True, options=options)
        assert got == expected, (
            f"seed {seed} level {level}:\n{source}\n"
            f"interp={expected!r} aot={got!r}")
        for mode in EMIT_MODES:
            mode_options = dataclasses.replace(options, emit_mode=mode)
            got_py = _run_lua(source, aot=True, options=mode_options,
                              backend="py")
            assert got_py == expected, (
                f"seed {seed} level {level} backend=py mode {mode}:\n"
                f"{source}\ninterp={expected!r} aot={got_py!r}")


def _run_lua_mode(source: str, mode: str, threshold: float = None):
    """Run a chunk interp / aot / tiered; returns (status, result,
    prints, fuel) with fuel None on trap (the VM is unreachable)."""
    runtime = LuaRuntime(source, options=TIERED_OPTIONS)
    try:
        if mode == "interp":
            vm = runtime.run_interpreted()
        elif mode == "aot":
            runtime.aot_compile()
            vm = runtime.run_aot()
        else:
            vm = runtime.run_tiered(threshold=threshold)
        return ("ok", vm.result, tuple(runtime.printed), vm.stats.fuel)
    except VMTrap:
        return ("trap", None, tuple(runtime.printed), None)


@pytest.mark.parametrize("seed", range(N_LUA))
def test_lua_tiered(seed):
    """Tiered tier for MiniLua: threshold ∞ ≡ interp and threshold 1 ≡
    AOT, including prints, traps, and deterministic fuel."""
    rng = random.Random(0xB0B + seed)
    source = random_lua_chunk(rng)
    interp = _run_lua_mode(source, "interp")
    aot = _run_lua_mode(source, "aot")
    tiered_inf = _run_lua_mode(source, "tiered", threshold=INF)
    tiered_one = _run_lua_mode(source, "tiered", threshold=1)
    assert tiered_inf == interp, (
        f"seed {seed}:\n{source}\ninterp={interp!r} "
        f"tiered-inf={tiered_inf!r}")
    assert tiered_one == aot, (
        f"seed {seed}:\n{source}\naot={aot!r} tiered-1={tiered_one!r}")


# ---------------------------------------------------------------------------
# MiniJS
# ---------------------------------------------------------------------------

def _js_expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.35:
        if rng.random() < 0.4:
            return str(rng.randint(-9, 9))
        return rng.choice(names)
    op = rng.choice(("+", "-", "*"))
    return (f"({_js_expr(rng, names, depth - 1)} {op} "
            f"{_js_expr(rng, names, depth - 1)})")


def random_js_source(rng: random.Random) -> str:
    names = ["a", "b", "c"]
    lines = [f"var {name} = {rng.randint(-9, 9)};" for name in names]
    lines.append(f"var o = {{x: {rng.randint(0, 9)}, "
                 f"y: {rng.randint(0, 9)}}};")
    props = ["o.x", "o.y"]
    everything = names + props
    for index in range(rng.randint(3, 6)):
        roll = rng.random()
        if roll < 0.35:
            lines.append(f"{rng.choice(names)} = "
                         f"{_js_expr(rng, everything, 2)};")
        elif roll < 0.55:
            lines.append(f"{rng.choice(props)} = "
                         f"{_js_expr(rng, everything, 2)};")
        elif roll < 0.7:
            lines.append(f"print({_js_expr(rng, everything, 2)});")
        elif roll < 0.85:
            cmp_op = rng.choice(("<", "<=", ">", "!=="))
            target = rng.choice(names)
            lines.append(
                f"if ({rng.choice(everything)} {cmp_op} "
                f"{rng.choice(everything)}) "
                f"{{ {target} = {_js_expr(rng, everything, 1)}; }} "
                f"else {{ {target} = {_js_expr(rng, everything, 1)}; }}")
        else:
            counter = f"i{index}"
            lines.append(f"var {counter} = {rng.randint(1, 4)};")
            lines.append(f"while ({counter} > 0) {{ "
                         f"{rng.choice(names)} = "
                         f"{_js_expr(rng, everything, 1)}; "
                         f"{counter} = {counter} - 1; }}")
    lines.append("print(a + b + c + o.x + o.y);")
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(N_JS))
def test_js_differential(seed):
    rng = random.Random(0xCAFE + seed)
    source = random_js_source(rng)
    reference = JSRuntime(source, "interp_ic")
    reference.run()
    config = "wevaled_state" if seed % 2 else "wevaled"
    for level, options in OPT_LEVELS.items():
        runtime = JSRuntime(source, config, options=options)
        vm = runtime.run()
        assert runtime.printed == reference.printed, (
            f"seed {seed} config {config} level {level}:\n{source}\n"
            f"interp={reference.printed!r} aot={runtime.printed!r}")
        # Tier-2 backend over the same snapshot, both emit modes:
        # identical prints and identical deterministic fuel.
        for mode in EMIT_MODES:
            mode_runtime = JSRuntime(
                source, config,
                options=dataclasses.replace(options, emit_mode=mode))
            vm_py = mode_runtime.run(backend="py")
            assert mode_runtime.printed == reference.printed, (
                f"seed {seed} config {config} level {level} backend=py "
                f"mode {mode}:\n{source}\n"
                f"interp={reference.printed!r} py={mode_runtime.printed!r}")
            assert vm_py.stats.fuel == vm.stats.fuel, (
                f"seed {seed} config {config} level {level} mode {mode}: "
                f"backend fuel {vm_py.stats.fuel} != VM fuel "
                f"{vm.stats.fuel}")


@pytest.mark.parametrize("seed", range(N_JS))
def test_js_tiered(seed):
    """Tiered tier for MiniJS: threshold ∞ ≡ interp_ic and threshold 1
    ≡ the AOT snapshot flow (prints and deterministic fuel), across
    both JS functions and the IC-stub corpus."""
    rng = random.Random(0xCAFE + seed)
    source = random_js_source(rng)
    reference = JSRuntime(source, "interp_ic")
    vm_ref = reference.run()
    config = "wevaled_state" if seed % 2 else "wevaled"

    aot_rt = JSRuntime(source, config, options=TIERED_OPTIONS)
    vm_aot = aot_rt.run()
    assert aot_rt.printed == reference.printed

    rt_inf = JSRuntime(source, config, options=TIERED_OPTIONS)
    vm_inf = rt_inf.run(mode="tiered", threshold=INF)
    assert rt_inf.printed == reference.printed, (
        f"seed {seed} config {config}:\n{source}\n"
        f"interp={reference.printed!r} tiered-inf={rt_inf.printed!r}")
    assert vm_inf.stats.fuel == vm_ref.stats.fuel, (
        f"seed {seed} config {config}: tiered-inf fuel "
        f"{vm_inf.stats.fuel} != interp {vm_ref.stats.fuel}")
    assert rt_inf.controller.stats.promotions == 0

    rt_one = JSRuntime(source, config, options=TIERED_OPTIONS)
    vm_one = rt_one.run(mode="tiered", threshold=1)
    assert rt_one.printed == reference.printed, (
        f"seed {seed} config {config}:\n{source}\n"
        f"interp={reference.printed!r} tiered-1={rt_one.printed!r}")
    assert vm_one.stats.fuel == vm_aot.stats.fuel, (
        f"seed {seed} config {config}: tiered-1 fuel "
        f"{vm_one.stats.fuel} != AOT {vm_aot.stats.fuel}")


# ---------------------------------------------------------------------------
# Inlined tier: hot MiniJS call chains under speculative inlining.
# ---------------------------------------------------------------------------

N_INLINE = 4


def random_js_callchain(rng: random.Random) -> str:
    """A seeded MiniJS program whose heat is a call chain through a
    first-class dispatcher: warm-up loops tier the leaf callees, then a
    hot loop drives them through ``apply`` so the dispatch site is
    nearly monomorphic — and, on odd seeds, switches callee mid-run to
    exercise the polymorphic guard's miss path."""
    leaves = []
    for n in range(3):
        body = _js_expr(rng, ["x"], 2)
        leaves.append(f"function f{n}(x) {{ return {body}; }}")
    first, second = rng.sample(range(3), 2)
    lines = leaves + [
        "function apply(f, x) { return f(x); }",
        "var w = 0;",
        "var k = 0;",
        f"while (k < 8) {{ w = w + f{first}(k) + f{second}(k); "
        "k = k + 1; }",
        "var t = w;",
        "var i = 0;",
        f"while (i < {rng.randint(20, 30)}) "
        f"{{ t = t + apply(f{first}, i); i = i + 1; }}",
    ]
    if rng.random() < 0.5:  # phase change: the guard must miss
        lines.extend([
            "var j = 0;",
            f"while (j < {rng.randint(15, 25)}) "
            f"{{ t = t + apply(f{second}, j); j = j + 1; }}",
        ])
    lines.append("print(t);")
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(N_INLINE))
def test_js_inlined_differential(seed):
    """Three-way differential on hot call chains: the interpreter, the
    staged tiered flow with inlining off, and with inlining on must
    print identically; within each config the two emit modes must agree
    on deterministic fuel.  Inlining-off stays bit-identical (fuel
    included) across this sweep; inlining-on may change fuel (it
    executes different residual code) but never output."""
    rng = random.Random(0x111E + seed)
    source = random_js_callchain(rng)
    reference = JSRuntime(source, "interp_ic")
    reference.run()

    fuel = {}
    for inline in (False, True):
        for mode in EMIT_MODES:
            options = SpecializeOptions(backend="py", emit_mode=mode)
            runtime = JSRuntime(source, "wevaled", options=options)
            kwargs = dict(threshold=2, compile_threshold=3)
            if inline:
                kwargs.update(inline=True, inline_min_site_calls=2)
            vm = runtime.run_tiered(**kwargs)
            assert runtime.printed == reference.printed, (
                f"seed {seed} inline={inline} mode {mode}:\n{source}\n"
                f"interp={reference.printed!r} got={runtime.printed!r}")
            fuel[(inline, mode)] = vm.stats.fuel
            stats = runtime.controller.stats
            if not inline:
                assert stats.inline_sites_planned == 0
            else:
                # Demotion, when exercised, retires per site and at
                # most once per site (one dispatch site here).
                assert stats.site_demotions <= 1
                assert stats.demotions == 0
    for inline in (False, True):
        modes_fuel = {fuel[(inline, mode)] for mode in EMIT_MODES}
        assert len(modes_fuel) == 1, (
            f"seed {seed} inline={inline}: emit modes disagree on fuel "
            f"{modes_fuel}")


# ---------------------------------------------------------------------------
# Irreducible CFGs: the structured emitter's dispatch-region fallback.
# ---------------------------------------------------------------------------

N_IRREDUCIBLE = 6


def _irreducible_module(seed: int):
    """A seeded function whose core is a two-entry cycle B <-> C — the
    canonical irreducible shape (no frontend in this repo emits one, so
    the fallback is exercised by building the IR directly).

    ``f(n, sel)``: entry branches on ``sel`` *into the middle* of the
    cycle; each cycle block folds a seeded constant into the
    accumulator and decrements the trip counter; both blocks exit to a
    shared return once the counter hits zero.  Total trips = ``n``
    regardless of the entry arm, so the result depends on seed, ``n``,
    and ``sel`` (which arm runs first).
    """
    from repro.ir import FunctionBuilder, I64, Module, Signature
    rng = random.Random(0x1BBED + seed)
    fb = FunctionBuilder(f"irr{seed}", Signature((I64, I64), (I64,)))
    n = fb.entry.params[0][0]
    sel = fb.entry.params[1][0]
    b = fb.new_block([I64, I64])
    c = fb.new_block([I64, I64])
    exit_b = fb.new_block([I64])
    zero = fb.iconst(0)
    start = fb.iconst(rng.randint(0, 1 << 12))
    fb.br_if(sel, b, c, [n, start], [n, start])

    fb.switch_to(b)
    i_b, acc_b = b.param_values()
    kb = fb.iconst(rng.randint(1, 1 << 10))
    acc_b2 = fb.iadd(acc_b, kb)
    if rng.random() < 0.5:
        acc_b2 = fb.emit("imul", (acc_b2, fb.iconst(rng.randint(2, 5))))
    i_b2 = fb.isub(i_b, fb.iconst(1))
    more_b = fb.emit("ine", (i_b2, zero))
    fb.br_if(more_b, c, exit_b, [i_b2, acc_b2], [acc_b2])

    fb.switch_to(c)
    i_c, acc_c = c.param_values()
    kc = fb.iconst(rng.randint(1, 1 << 10))
    acc_c2 = fb.emit("ixor", (acc_c, kc))
    i_c2 = fb.isub(i_c, fb.iconst(1))
    more_c = fb.emit("ine", (i_c2, zero))
    fb.br_if(more_c, b, exit_b, [i_c2, acc_c2], [acc_c2])

    fb.switch_to(exit_b)
    fb.ret(exit_b.param_values()[0])
    func = fb.finish()
    module = Module(memory_size=64)
    module.add_function(func)
    return module, func


def _run_irr(module, name, compiled_fn, args, fuel_limit):
    from repro.vm import OutOfFuel
    vm = VM(module, fuel_limit=fuel_limit)
    if compiled_fn is not None:
        vm.install_compiled({name: compiled_fn})
    try:
        return ("ok", vm.call(name, list(args)), vm.stats.fuel)
    except VMTrap as trap:
        return ("trap", str(trap), None)
    except OutOfFuel:
        return ("out-of-fuel", None, None)


@pytest.mark.parametrize("seed", range(N_IRREDUCIBLE))
def test_irreducible_three_way(seed):
    module, func = _irreducible_module(seed)
    compiled = {mode: compile_function(func, module, mode=mode)
                for mode in EMIT_MODES}
    # The structured emitter must keep its structured skeleton but carve
    # the multi-entry cycle into a dispatch region — not silently fall
    # back to the flat emitter for the whole function.
    assert compiled["structured"].emit_mode == "structured"
    assert compiled["structured"].dispatch_regions >= 1, (
        f"seed {seed}: irreducible cycle did not produce a dispatch "
        f"region")
    assert compiled["structured"].dispatch_region_blocks >= 2
    assert compiled["dispatch"].emit_mode == "dispatch"

    for n in (1, 2, 3, 17):
        for sel in (0, 1):
            reference = _run_irr(module, func.name, None, (n, sel), None)
            assert reference[0] == "ok"
            for mode in EMIT_MODES:
                got = _run_irr(module, func.name, compiled[mode].pyfunc,
                               (n, sel), None)
                assert got == reference, (
                    f"seed {seed} n={n} sel={sel} mode {mode}: "
                    f"{got!r} != VM {reference!r}")
    # OutOfFuel agreement at every limit up to a full run: the fuel
    # batching in structured mode must still trap at the exact VM
    # block boundary.
    full = _run_irr(module, func.name, None, (3, 1), None)[2]
    for limit in range(1, full + 1):
        reference = _run_irr(module, func.name, None, (3, 1), limit)
        for mode in EMIT_MODES:
            got = _run_irr(module, func.name, compiled[mode].pyfunc,
                           (3, 1), limit)
            assert got == reference, (
                f"seed {seed} limit {limit} mode {mode}: {got!r} != "
                f"VM {reference!r}")
