"""Differential tests: generic interpretation vs. specialized residual
code on seeded random programs — across both execution backends.

Fifty seeded random programs across the three guest frontends (Min ISA,
MiniLua, MiniJS) are each run three ways — under the generic interpreter
on the VM, as the specialized (first Futamura projection) residual
function interpreted by the IR VM, and as the same residual compiled to
native Python by the tier-2 backend (:mod:`repro.backend`) — and must
produce identical results, prints, and traps.  Every comparison is made
at two optimization levels: ``-O0`` (raw specializer output, no mid-end)
and the full default pipeline, so a miscompiling pass shows up as a
divergence between levels, a specializer bug shows up at both, and a
backend bug shows up as a VM-vs-py divergence at either level.

The generators are structured (bounded counted loops, forward skips,
guarded conditionals) so every program terminates; MiniLua programs
include integer division and remainder whose divisors may reach zero,
exercising trap equivalence.
"""

import random

import pytest

from repro.backend import compile_function
from repro.core.specialize import SpecializeOptions
from repro.jsvm import JSRuntime
from repro.luavm.runtime import LuaRuntime
from repro.min.harness import PyMinInterpreter
from repro.min.interp import PROGRAM_BASE, build_min_module, specialize_min
from repro.min.isa import assemble
from repro.vm import VM
from repro.vm.machine import VMTrap

N_MIN, N_LUA, N_JS = 24, 20, 6  # 50 programs total

OPT_LEVELS = {
    "O0": SpecializeOptions(optimize=False, backend="vm"),
    "full": SpecializeOptions(backend="vm"),
}


# ---------------------------------------------------------------------------
# Min ISA
# ---------------------------------------------------------------------------

def random_min_program(rng: random.Random):
    """A random Min program with a bounded counted loop (register 7),
    forward skips, and input-dependent data flow (input lands in r5)."""
    lines = [("STORE_REG", 5)]  # capture the input accumulator
    for reg in range(4):
        lines.append(("LOAD_IMMEDIATE", rng.randint(0, 1 << 16)))
        lines.append(("STORE_REG", reg))
    lines.append(("LOAD_IMMEDIATE", rng.randint(1, 5)))
    lines.append(("STORE_REG", 7))
    lines.append(("label", "loop"))
    fresh = iter(range(1000))
    for _ in range(rng.randint(1, 6)):
        roll = rng.random()
        if roll < 0.15:
            lines.append(("LOAD_IMMEDIATE", rng.randint(-50, 1000)))
        elif roll < 0.40:
            lines.append((rng.choice(("ADD", "SUB", "MUL")),
                          rng.randint(0, 3), rng.randint(0, 3)))
        elif roll < 0.55:
            lines.append(("ADD_IMMEDIATE", rng.randint(-50, 50)))
        elif roll < 0.70:
            lines.append(("LOAD_REG", rng.choice((0, 1, 2, 3, 5))))
        elif roll < 0.85:
            lines.append(("STORE_REG", rng.randint(0, 3)))
        elif roll < 0.93:
            label = f"skip{next(fresh)}"
            lines.append(("JMPNZ", label))  # input-dependent forward skip
            lines.append(("ADD", rng.randint(0, 3), rng.randint(0, 3)))
            lines.append(("label", label))
        else:
            label = f"over{next(fresh)}"
            lines.append(("JMP", label))
            lines.append(("ADD_IMMEDIATE", 999))  # skipped dead code
            lines.append(("label", label))
    lines.extend([
        ("LOAD_REG", 7),
        ("ADD_IMMEDIATE", -1),
        ("STORE_REG", 7),
        ("JMPNZ", "loop"),
        ("ADD", rng.randint(0, 3), rng.randint(0, 5)),
        ("HALT",),
    ])
    return assemble(lines)


@pytest.mark.parametrize("seed", range(N_MIN))
def test_min_differential(seed):
    rng = random.Random(0xA11CE + seed)
    program = random_min_program(rng)
    use_intrinsics = bool(seed % 2)
    inputs = (0, rng.randint(1, 99))

    module = build_min_module(program)
    expected = {}
    for value in inputs:
        expected[value] = VM(module).call(
            "min_interp", [PROGRAM_BASE, len(program.words), value])
        # The pure-Python reference interpreter must agree too.
        assert PyMinInterpreter(program).run(value) == expected[value]

    for level, options in OPT_LEVELS.items():
        spec_module = build_min_module(program)
        func = specialize_min(spec_module, program, use_intrinsics,
                              options=options, name=f"spec_{level}")
        compiled = compile_function(func, spec_module)
        for value in inputs:
            vm = VM(spec_module)
            got = vm.call(
                func.name, [PROGRAM_BASE, len(program.words), value])
            assert got == expected[value], (
                f"seed {seed} level {level} input {value}: "
                f"specialized {got} != interpreted {expected[value]}")
            # Tier-2 backend: same residual compiled to Python must
            # agree on the result *and* on deterministic fuel.
            vm_py = VM(spec_module)
            vm_py.install_compiled({func.name: compiled.pyfunc})
            got_py = vm_py.call(
                func.name, [PROGRAM_BASE, len(program.words), value])
            assert got_py == expected[value], (
                f"seed {seed} level {level} input {value}: "
                f"py-compiled {got_py} != interpreted {expected[value]}")
            assert vm_py.stats.fuel == vm.stats.fuel, (
                f"seed {seed} level {level} input {value}: backend fuel "
                f"{vm_py.stats.fuel} != VM fuel {vm.stats.fuel}")


# ---------------------------------------------------------------------------
# MiniLua
# ---------------------------------------------------------------------------

def _lua_expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return str(rng.randint(-9, 9))
        return rng.choice(names)
    op = rng.choice(("+", "-", "*", "+", "-", "*", "/", "%"))
    left = _lua_expr(rng, names, depth - 1)
    right = _lua_expr(rng, names, depth - 1)
    # Division and remainder keep their random (possibly zero) divisors:
    # trap equivalence is part of the differential contract.
    return f"({left} {op} {right})"


def _lua_cond(rng: random.Random, names) -> str:
    cmp_op = rng.choice(("<", "<=", ">", ">=", "==", "~="))
    base = (f"{_lua_expr(rng, names, 1)} {cmp_op} "
            f"{_lua_expr(rng, names, 1)}")
    roll = rng.random()
    if roll < 0.2:
        return f"not ({base})"
    if roll < 0.4:
        other = (f"{rng.choice(names)} "
                 f"{rng.choice(('<', '~=', '>='))} {rng.randint(-5, 5)}")
        return f"({base}) {rng.choice(('and', 'or'))} ({other})"
    return base


def _lua_stmts(rng: random.Random, names, counters, depth: int):
    lines = []
    for _ in range(rng.randint(1, 4)):
        roll = rng.random()
        if roll < 0.45 or depth <= 0:
            lines.append(f"{rng.choice(names)} = "
                         f"{_lua_expr(rng, names, 2)}")
        elif roll < 0.6:
            lines.append(f"print({_lua_expr(rng, names, 2)})")
        elif roll < 0.8:
            body = _lua_stmts(rng, names, counters, depth - 1)
            orelse = _lua_stmts(rng, names, counters, depth - 1)
            lines.append(f"if {_lua_cond(rng, names)} then")
            lines.extend("  " + s for s in body)
            lines.append("else")
            lines.extend("  " + s for s in orelse)
            lines.append("end")
        elif roll < 0.9 and counters:
            counter = counters.pop()
            body = _lua_stmts(rng, names, counters, depth - 1)
            lines.append(f"{counter} = {rng.randint(1, 4)}")
            lines.append(f"while {counter} > 0 do")
            lines.extend("  " + s for s in body)
            lines.append(f"  {counter} = {counter} - 1")
            lines.append("end")
        else:
            var = f"k{rng.randint(0, 99)}"
            body = _lua_stmts(rng, names, counters, depth - 1)
            lines.append(f"for {var} = 1, {rng.randint(1, 4)} do")
            lines.extend("  " + s for s in body)
            lines.append("end")
    return lines


def random_lua_chunk(rng: random.Random) -> str:
    names = ["a", "b", "c", "d"]
    counters = ["t1", "t2"]
    lines = []
    if rng.random() < 0.6:
        lines.append("function helper(x, y)")
        lines.append(f"  local r = {_lua_expr(rng, ['x', 'y'], 2)}")
        lines.append(f"  if {_lua_cond(rng, ['x', 'y', 'r'])} then")
        lines.append(f"    r = {_lua_expr(rng, ['x', 'y', 'r'], 1)}")
        lines.append("  end")
        lines.append("  return r")
        lines.append("end")
        names.append("helper_result")
    for name in names:
        lines.append(f"local {name} = {rng.randint(-9, 9)}")
    for counter in counters:
        lines.append(f"local {counter} = 0")
    lines.extend(_lua_stmts(rng, names[:4], list(counters), 2))
    if "helper_result" in names:
        lines.append(f"helper_result = helper({_lua_expr(rng, names[:4], 1)},"
                     f" {_lua_expr(rng, names[:4], 1)})")
    lines.append(f"print({' + '.join(names)})")
    return "\n".join(lines)


def _run_lua(source: str, aot: bool, options=None, backend=None):
    runtime = LuaRuntime(source)
    try:
        if aot:
            runtime.aot_compile(options)
            vm = runtime.run_aot(backend)
        else:
            vm = runtime.run_interpreted()
        return ("ok", vm.result, tuple(runtime.printed))
    except VMTrap:
        return ("trap", None, tuple(runtime.printed))


@pytest.mark.parametrize("seed", range(N_LUA))
def test_lua_differential(seed):
    rng = random.Random(0xB0B + seed)
    source = random_lua_chunk(rng)
    expected = _run_lua(source, aot=False)
    for level, options in OPT_LEVELS.items():
        got = _run_lua(source, aot=True, options=options)
        assert got == expected, (
            f"seed {seed} level {level}:\n{source}\n"
            f"interp={expected!r} aot={got!r}")
        got_py = _run_lua(source, aot=True, options=options, backend="py")
        assert got_py == expected, (
            f"seed {seed} level {level} backend=py:\n{source}\n"
            f"interp={expected!r} aot={got_py!r}")


# ---------------------------------------------------------------------------
# MiniJS
# ---------------------------------------------------------------------------

def _js_expr(rng: random.Random, names, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.35:
        if rng.random() < 0.4:
            return str(rng.randint(-9, 9))
        return rng.choice(names)
    op = rng.choice(("+", "-", "*"))
    return (f"({_js_expr(rng, names, depth - 1)} {op} "
            f"{_js_expr(rng, names, depth - 1)})")


def random_js_source(rng: random.Random) -> str:
    names = ["a", "b", "c"]
    lines = [f"var {name} = {rng.randint(-9, 9)};" for name in names]
    lines.append(f"var o = {{x: {rng.randint(0, 9)}, "
                 f"y: {rng.randint(0, 9)}}};")
    props = ["o.x", "o.y"]
    everything = names + props
    for index in range(rng.randint(3, 6)):
        roll = rng.random()
        if roll < 0.35:
            lines.append(f"{rng.choice(names)} = "
                         f"{_js_expr(rng, everything, 2)};")
        elif roll < 0.55:
            lines.append(f"{rng.choice(props)} = "
                         f"{_js_expr(rng, everything, 2)};")
        elif roll < 0.7:
            lines.append(f"print({_js_expr(rng, everything, 2)});")
        elif roll < 0.85:
            cmp_op = rng.choice(("<", "<=", ">", "!=="))
            target = rng.choice(names)
            lines.append(
                f"if ({rng.choice(everything)} {cmp_op} "
                f"{rng.choice(everything)}) "
                f"{{ {target} = {_js_expr(rng, everything, 1)}; }} "
                f"else {{ {target} = {_js_expr(rng, everything, 1)}; }}")
        else:
            counter = f"i{index}"
            lines.append(f"var {counter} = {rng.randint(1, 4)};")
            lines.append(f"while ({counter} > 0) {{ "
                         f"{rng.choice(names)} = "
                         f"{_js_expr(rng, everything, 1)}; "
                         f"{counter} = {counter} - 1; }}")
    lines.append("print(a + b + c + o.x + o.y);")
    return "\n".join(lines)


@pytest.mark.parametrize("seed", range(N_JS))
def test_js_differential(seed):
    rng = random.Random(0xCAFE + seed)
    source = random_js_source(rng)
    reference = JSRuntime(source, "interp_ic")
    reference.run()
    config = "wevaled_state" if seed % 2 else "wevaled"
    for level, options in OPT_LEVELS.items():
        runtime = JSRuntime(source, config, options=options)
        vm = runtime.run()
        assert runtime.printed == reference.printed, (
            f"seed {seed} config {config} level {level}:\n{source}\n"
            f"interp={reference.printed!r} aot={runtime.printed!r}")
        # Tier-2 backend over the same snapshot: identical prints and
        # identical deterministic fuel.
        runtime.printed.clear()
        vm_py = runtime.run(backend="py")
        assert runtime.printed == reference.printed, (
            f"seed {seed} config {config} level {level} backend=py:\n"
            f"{source}\n"
            f"interp={reference.printed!r} py={runtime.printed!r}")
        assert vm_py.stats.fuel == vm.stats.fuel, (
            f"seed {seed} config {config} level {level}: backend fuel "
            f"{vm_py.stats.fuel} != VM fuel {vm.stats.fuel}")
