"""Unit tests for the mini-C frontend: parsing, lowering, semantics."""

import pytest

from repro.frontend import CompileError, compile_source
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_source
from repro.ir.instructions import wrap_i64

from tests.helpers import run


class TestLexer:
    def test_tokens(self):
        toks = tokenize("u64 f() { return 0x10 + 2.5e1; }")
        kinds = [t.kind for t in toks]
        assert kinds[-1] == "eof"
        assert any(t.kind == "int" and t.value == 16 for t in toks)
        assert any(t.kind == "float" and t.value == 25.0 for t in toks)

    def test_comments_skipped(self):
        toks = tokenize("// line\nu64 /* block\n over lines */ x")
        assert [t.text for t in toks[:-1]] == ["u64", "x"]

    def test_greedy_operators(self):
        toks = tokenize("a <<= b")  # not an operator; lexes as << then =
        assert [t.text for t in toks[:-1]] == ["a", "<<", "=", "b"]

    def test_bad_char(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("u64 f@()")

    def test_unterminated_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("/* nope")


class TestParser:
    def test_program_shape(self):
        prog = parse_source("""
        extern u64 host(u64 a);
        u64 f(u64 x) { return host(x); }
        void g() { }
        """)
        assert len(prog.functions) == 2
        assert len(prog.externs) == 1
        assert prog.functions[0].result == "u64"
        assert prog.functions[1].result == "void"

    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="';'"):
            parse_source("u64 f() { return 1 }")

    def test_bad_statement(self):
        with pytest.raises(CompileError):
            parse_source("u64 f() { 1 + 2; }")


class TestExpressions:
    def test_precedence(self):
        assert run("u64 f() { return 2 + 3 * 4; }", "f") == 14
        assert run("u64 f() { return (2 + 3) * 4; }", "f") == 20
        assert run("u64 f() { return 1 << 3 + 1; }", "f") == 16
        assert run("u64 f() { return 7 & 3 | 8; }", "f") == 11

    def test_unsigned_semantics_by_default(self):
        # u64 is C uint64_t: unsigned compare and divide.
        assert run("u64 f() { return 0 - 1 < 1; }", "f") == 0
        assert run("u64 f() { return (0 - 8) / 2; }", "f") == \
            (wrap_i64(-8)) // 2

    def test_signed_builtins(self):
        assert run("u64 f() { return slt(0 - 1, 1); }", "f") == 1
        assert run("u64 f() { return sdiv(0 - 8, 2); }", "f") == wrap_i64(-4)

    def test_logical_short_circuit(self):
        src = """
        extern u64 boom(u64 x);
        u64 f(u64 x) { return x && boom(x); }
        u64 g(u64 x) { return x || boom(x); }
        """
        calls = []

        def boom(vm, x):
            calls.append(x)
            return 1

        assert run(src, "f", [0], externs={"boom": boom}) == 0
        assert calls == []
        assert run(src, "g", [5], externs={"boom": boom}) == 1
        assert calls == []

    def test_logical_normalizes_to_bool(self):
        assert run("u64 f() { return 7 && 9; }", "f") == 1
        assert run("u64 f() { return 0 || 4; }", "f") == 1

    def test_ternary(self):
        src = "u64 f(u64 x) { return x > 10 ? x * 2 : x + 1; }"
        assert run(src, "f", [20]) == 40
        assert run(src, "f", [3]) == 4

    def test_ternary_is_lazy(self):
        src = """
        extern u64 boom(u64 x);
        u64 f(u64 x) { return x ? 1 : boom(x); }
        """
        assert run(src, "f", [1], externs={"boom": lambda vm, x: 1 // 0}) == 1

    def test_unary(self):
        assert run("u64 f() { return !0 + !5; }", "f") == 1
        assert run("u64 f() { return ~0; }", "f") == wrap_i64(-1)
        assert run("u64 f() { return -(1); }", "f") == wrap_i64(-1)
        assert run("f64 f() { return -(1.5); }", "f") == -1.5

    def test_type_mismatch_rejected(self):
        with pytest.raises(CompileError, match="mismatch"):
            compile_source("u64 f(f64 x) { return x + 1; }")

    def test_float_modulo_rejected(self):
        with pytest.raises(CompileError, match="not valid"):
            compile_source("f64 f(f64 x) { return x % 2.0; }")


class TestControlFlow:
    def test_nested_if_else(self):
        src = """
        u64 f(u64 x) {
          if (x < 10) { return 1; }
          else if (x < 20) { return 2; }
          else { return 3; }
        }
        """
        assert [run(src, "f", [v]) for v in (5, 15, 25)] == [1, 2, 3]

    def test_while_break_continue(self):
        src = """
        u64 f(u64 n) {
          u64 total = 0;
          u64 i = 0;
          while (1) {
            i++;
            if (i > n) { break; }
            if (i % 2 == 0) { continue; }
            total += i;
          }
          return total;
        }
        """
        assert run(src, "f", [10]) == 1 + 3 + 5 + 7 + 9

    def test_for_with_decl(self):
        src = """
        u64 f(u64 n) {
          u64 acc = 1;
          for (u64 i = 1; i <= n; i++) { acc *= i; }
          return acc;
        }
        """
        assert run(src, "f", [6]) == 720

    def test_for_continue_hits_step(self):
        src = """
        u64 f(u64 n) {
          u64 acc = 0;
          for (u64 i = 0; i < n; i++) {
            if (i == 2) { continue; }
            acc += i;
          }
          return acc;
        }
        """
        assert run(src, "f", [5]) == 0 + 1 + 3 + 4

    def test_switch_dense_and_fallthrough(self):
        src = """
        u64 f(u64 x) {
          u64 r = 0;
          switch (x) {
          case 0: r = 10; break;
          case 1:
          case 2: r = 20; break;
          case 3: r = 30;
          case 4: r += 1; break;
          default: r = 99;
          }
          return r;
        }
        """
        assert [run(src, "f", [v]) for v in range(6)] == \
            [10, 20, 20, 31, 1, 99]

    def test_switch_sparse(self):
        src = """
        u64 f(u64 x) {
          switch (x) {
          case 10: return 1;
          case 5000: return 2;
          case 100000: return 3;
          default: return 0;
          }
        }
        """
        assert run(src, "f", [5000]) == 2
        assert run(src, "f", [7]) == 0

    def test_break_in_switch_inside_loop(self):
        src = """
        u64 f(u64 n) {
          u64 acc = 0;
          for (u64 i = 0; i < n; i++) {
            switch (i % 3) {
            case 0: acc += 100; break;
            default: acc += 1; break;
            }
          }
          return acc;
        }
        """
        assert run(src, "f", [6]) == 100 + 1 + 1 + 100 + 1 + 1

    def test_shadowing_scopes(self):
        src = """
        u64 f() {
          u64 x = 1;
          { u64 x = 2; x = x + 1; }
          return x;
        }
        """
        assert run(src, "f") == 1

    def test_loop_carried_ssa(self):
        # Exercises Braun incomplete-params on loop headers.
        src = """
        u64 f(u64 n) {
          u64 a = 0;
          u64 b = 1;
          for (u64 i = 0; i < n; i++) {
            u64 t = a + b;
            a = b;
            b = t;
          }
          return a;
        }
        """
        assert run(src, "f", [10]) == 55  # fib(10)


class TestArraysAndShadowStack:
    def test_local_array(self):
        src = """
        u64 f() {
          u64 buf[8];
          for (u64 i = 0; i < 8; i++) { buf[i] = i * 3; }
          u64 acc = 0;
          for (u64 i = 0; i < 8; i++) { acc += buf[i]; }
          return acc;
        }
        """
        assert run(src, "f") == sum(i * 3 for i in range(8))

    def test_f64_array(self):
        src = """
        f64 f() {
          f64 xs[4];
          xs[0] = 1.5;
          xs[1] = 2.5;
          return xs[0] + xs[1];
        }
        """
        assert run(src, "f") == 4.0

    def test_recursion_gets_fresh_frames(self):
        src = """
        u64 f(u64 n) {
          u64 buf[4];
          buf[0] = n;
          if (n == 0) { return 0; }
          u64 sub = f(n - 1);
          return buf[0] + sub;
        }
        """
        assert run(src, "f", [5]) == 5 + 4 + 3 + 2 + 1

    def test_shadow_stack_restored(self):
        src = """
        u64 g() { u64 buf[16]; buf[0] = 1; return buf[0]; }
        u64 f() {
          u64 a = g();
          u64 b = g();
          return a + b;
        }
        """
        from tests.helpers import build_module
        from repro.vm import VM
        module = build_module(src)
        vm = VM(module)
        assert vm.call("f", []) == 2
        assert vm.globals["__sp"] == module.memory_size  # fully popped

    def test_compound_index_assign(self):
        src = """
        u64 f() {
          u64 buf[2];
          buf[0] = 10;
          buf[0] += 5;
          return buf[0];
        }
        """
        assert run(src, "f") == 15


class TestDiagnostics:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared variable"):
            compile_source("u64 f() { return nope; }")

    def test_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared function"):
            compile_source("u64 f() { return nope(); }")

    def test_redeclaration(self):
        with pytest.raises(CompileError, match="redeclaration"):
            compile_source("u64 f() { u64 x = 1; u64 x = 2; return x; }")

    def test_missing_return(self):
        with pytest.raises(CompileError, match="end of non-void"):
            compile_source("u64 f(u64 x) { x = 1; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            compile_source("void f() { break; }")

    def test_void_returns_value(self):
        with pytest.raises(CompileError, match="void function"):
            compile_source("void f() { return 1; }")

    def test_duplicate_case(self):
        with pytest.raises(CompileError, match="duplicate case"):
            compile_source(
                "u64 f(u64 x) { switch (x) { case 1: case 1: break; } "
                "return 0; }")

    def test_extern_not_provided(self):
        from repro.ir import Module
        prog = compile_source("extern u64 h(); u64 f() { return h(); }")
        with pytest.raises(CompileError, match="not provided"):
            prog.add_to_module(Module(memory_size=64))
