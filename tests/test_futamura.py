"""Integration tests for the weval transform: the first Futamura
projection on a small accumulator interpreter (the paper's Fig. 6
scenario), including bytecode erasure, both conditional-branch styles,
and semantic equivalence between generic and specialized execution."""

import pytest

from repro.core import (
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    specialize,
)
from repro.core.specialize import SpecializeError, SpecializeOptions
from repro.ir import Module, print_function, verify_function, verify_module
from repro.vm import VM

from tests.helpers import build_module

# Opcodes: 0=LOADI imm, 1=ADDI imm, 2=SUBI imm, 3=JMPNZ target, 4=HALT.
INTERP_SRC_TEMPLATE = """
u64 interp(u64 program, u64 proglen, u64 input) {
  u64 pc = 0;
  u64 acc = input;
  weval_push_context(pc);
  while (1) {
    u64 op = load64(program + pc * 8);
    pc = pc + 1;
    switch (op) {
    case 0: { acc = load64(program + pc * 8); pc = pc + 1; break; }
    case 1: { acc = acc + load64(program + pc * 8); pc = pc + 1; break; }
    case 2: { acc = acc - load64(program + pc * 8); pc = pc + 1; break; }
    case 3: {
      u64 target = load64(program + pc * 8);
      pc = pc + 1;
      %(branch)s
    }
    case 4: { return acc; }
    default: { abort(); }
    }
    weval_update_context(pc);
  }
  return 0;
}
"""

TWO_BACKEDGE = """
      if (acc != 0) { pc = target; weval_update_context(pc); continue; }
      weval_update_context(pc);
      continue;
"""

THE_TRICK = """
      pc = select(acc != 0, target, pc);
      pc = weval_specialized_value(pc, 0, proglen - 1);
      break;
"""

BASE = 0x1000
COUNTDOWN = [2, 1, 3, 0, 1, 42, 4]       # acc-=1 loop, then acc+=42, halt


def setup(branch_style, code):
    module = build_module(INTERP_SRC_TEMPLATE % {"branch": branch_style})
    for i, word in enumerate(code):
        module.write_init_u64(BASE + i * 8, word)
    return module


def make_request(code, **kwargs):
    return SpecializationRequest(
        "interp",
        [SpecializedMemory(BASE, len(code) * 8),
         SpecializedConst(len(code)), Runtime()],
        **kwargs)


@pytest.mark.parametrize("style,stylename",
                         [(TWO_BACKEDGE, "two_backedge"),
                          (THE_TRICK, "the_trick")])
class TestFutamuraProjection:
    def test_equivalence_and_speedup(self, style, stylename):
        module = setup(style, COUNTDOWN)
        vm = VM(module)
        expect = vm.call("interp", [BASE, len(COUNTDOWN), 100])
        assert expect == 42
        generic_fuel = vm.stats.fuel

        func = specialize(module, make_request(COUNTDOWN))
        module.add_function(func)
        verify_module(module)

        vm2 = VM(module)
        got = vm2.call(func.name, [BASE, len(COUNTDOWN), 100])
        assert got == expect
        assert vm2.stats.fuel < generic_fuel / 2  # ≥2x dispatch removal

    def test_bytecode_erasure(self, style, stylename):
        """The paper's definition: the specialized program must not load
        from the bytecode stream (S2.2)."""
        module = setup(style, COUNTDOWN)
        func = specialize(module, make_request(COUNTDOWN))
        module.add_function(func)
        vm = VM(module)
        assert vm.call(func.name, [BASE, len(COUNTDOWN), 17]) == 42
        assert vm.stats.loads == 0  # no bytecode loads survive

    def test_cfg_follows_bytecode_not_interpreter(self, style, stylename):
        """Fig. 6: the output CFG contains the *guest* loop."""
        module = setup(style, COUNTDOWN)
        func = specialize(module, make_request(COUNTDOWN))
        text = print_function(func)
        # The guest program's constants appear directly in the code.
        assert "iconst 42" in text
        # There is a loop: some block is jumped to from later in the text.
        assert func.num_blocks() < 40  # compact, not interpreter-sized

    def test_semantics_preserved_across_inputs(self, style, stylename):
        module = setup(style, COUNTDOWN)
        func = specialize(module, make_request(COUNTDOWN))
        module.add_function(func)
        for value in (1, 2, 7, 63):
            vm_a = VM(module)
            vm_b = VM(module)
            assert (vm_a.call("interp", [BASE, len(COUNTDOWN), value]) ==
                    vm_b.call(func.name, [BASE, len(COUNTDOWN), value]))


class TestStraightLineProgram:
    def test_fully_folds(self):
        code = [0, 10, 1, 5, 1, 7, 4]  # LOADI 10; ADDI 5; ADDI 7; HALT
        module = setup(TWO_BACKEDGE, code)
        func = specialize(module, make_request(code))
        module.add_function(func)
        vm = VM(module)
        assert vm.call(func.name, [BASE, len(code), 0]) == 22
        # acc is a chain of constants: the entire computation folds and
        # the result is a single constant return.
        assert vm.stats.fuel <= 10


class TestRequestValidation:
    def test_unknown_function(self):
        module = setup(TWO_BACKEDGE, COUNTDOWN)
        with pytest.raises(SpecializeError, match="unknown function"):
            specialize(module, SpecializationRequest("nope", []))

    def test_arg_count_mismatch(self):
        module = setup(TWO_BACKEDGE, COUNTDOWN)
        with pytest.raises(SpecializeError, match="arg modes"):
            specialize(module, SpecializationRequest("interp", [Runtime()]))

    def test_request_naming(self):
        req = make_request(COUNTDOWN)
        assert req.name().startswith("interp.spec.")
        named = make_request(COUNTDOWN, specialized_name="custom")
        assert named.name() == "custom"

    def test_bad_ssa_mode(self):
        with pytest.raises(ValueError):
            SpecializeOptions(ssa_mode="bogus")


class TestSsaModes:
    def test_naive_mode_has_more_params(self):
        """The S3.4 ablation: naive max-SSA creates far more block
        parameters than the minimal strategy."""
        module = setup(TWO_BACKEDGE, COUNTDOWN)
        minimal = specialize(module, make_request(
            COUNTDOWN, specialized_name="spec_min"),
            SpecializeOptions(optimize=False))
        naive = specialize(module, make_request(
            COUNTDOWN, specialized_name="spec_naive"),
            SpecializeOptions(ssa_mode="naive", optimize=False))
        assert naive.total_block_params() > minimal.total_block_params()

    def test_naive_mode_still_correct(self):
        module = setup(TWO_BACKEDGE, COUNTDOWN)
        func = specialize(module, make_request(COUNTDOWN),
                          SpecializeOptions(ssa_mode="naive"))
        module.add_function(func)
        verify_module(module)
        vm = VM(module)
        assert vm.call(func.name, [BASE, len(COUNTDOWN), 9]) == 42


class TestAssertConst:
    def test_assert_const_passes_for_constant(self):
        src = """
        u64 f(u64 x) { return weval_assert_const(x) + 1; }
        """
        module = build_module(src)
        func = specialize(module, SpecializationRequest(
            "f", [SpecializedConst(41)]))
        module.add_function(func)
        vm = VM(module)
        assert vm.call(func.name, [0]) == 42

    def test_assert_const_fails_for_runtime(self):
        src = "u64 f(u64 x) { return weval_assert_const(x); }"
        module = build_module(src)
        with pytest.raises(SpecializeError, match="assert_const"):
            specialize(module, SpecializationRequest("f", [Runtime()]))


class TestGuestLoopsRemainLoops:
    def test_loop_fuel_scales_but_code_is_constant_size(self):
        module = setup(TWO_BACKEDGE, COUNTDOWN)
        func = specialize(module, make_request(COUNTDOWN))
        module.add_function(func)
        fuels = []
        for n in (10, 100):
            vm = VM(module)
            vm.call(func.name, [BASE, len(COUNTDOWN), n])
            fuels.append(vm.stats.fuel)
        # Fuel scales with iterations: the guest loop is a real loop in
        # the specialized code, not unrolled per-input.
        assert fuels[1] > fuels[0] * 5
