"""Golden snapshots of the Python source the tier-2 backend emits.

The emitted text for the two fixed golden workloads (the Fig. 8 Min sum
residual and the MiniLua gcd residual) is snapshotted under
``tests/golden/``, so any emitter change — dispatch shape, per-block
counters, instruction lowering — shows up as a reviewable diff rather
than a silent codegen churn.  Accept intentional changes with::

    PYTHONPATH=src python -m pytest tests/test_golden_backend.py --update-golden

Each test also executes the compiled function and checks the result, so
a golden snapshot can never capture broken code.
"""

from repro.backend import compile_function
from repro.luavm.runtime import LuaRuntime
from repro.min.harness import sum_to_n_program
from repro.min.interp import PROGRAM_BASE, build_min_module, specialize_min
from repro.vm import VM

from tests.helpers import check_golden
from tests.test_golden_ir import LUA_GCD_SRC


def test_min_sum_emitted_py_golden(request):
    """Emitted Python for the Fig. 8 sum-to-n Min residual."""
    program = sum_to_n_program(5)
    module = build_min_module(program)
    func = specialize_min(module, program, use_intrinsics=False,
                          name="min_sum_golden")
    compiled = compile_function(func, module)
    vm = VM(module)
    vm.install_compiled({func.name: compiled.pyfunc})
    assert vm.call(func.name,
                   [PROGRAM_BASE, len(program.words), 0]) == 15
    check_golden(request, "min_sum_py", compiled.source)


def test_lua_gcd_emitted_py_golden(request):
    """Emitted Python for the MiniLua gcd residual."""
    runtime = LuaRuntime(LUA_GCD_SRC)
    runtime.aot_compile()
    vm = runtime.run_aot(backend="py")
    assert runtime.printed == [21]
    assert not runtime.compiler.backend_fallbacks
    func = runtime.module.functions["lua$gcd"]
    compiled = compile_function(func, runtime.module)
    check_golden(request, "lua_gcd_py", compiled.source)
