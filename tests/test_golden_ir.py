"""Golden residual-IR snapshots for two small fixed workloads.

The full pipeline's output for a Min program and a MiniLua chunk is
snapshotted as printed IR under ``tests/golden/``; any optimizer change
that perturbs residual code shows up as a readable text diff instead of
a silent size or performance regression.

To accept intentional changes, regenerate the snapshots with::

    PYTHONPATH=src python -m pytest tests/test_golden_ir.py --update-golden
"""

from repro.ir import print_function, verify_function
from repro.luavm.runtime import LuaRuntime
from repro.min.harness import sum_to_n_program
from repro.min.interp import PROGRAM_BASE, build_min_module, specialize_min
from repro.vm import VM

from tests.helpers import check_golden

LUA_GCD_SRC = """
function gcd(a, b)
  while b ~= 0 do
    local t = b
    b = a % b
    a = t
  end
  return a
end
print(gcd(1071, 462))
"""


def test_min_sum_residual_golden(request):
    """Full-pipeline residual IR for the Fig. 8 sum-to-n Min workload
    (plain variant: registers in memory, so the mid-end has work)."""
    program = sum_to_n_program(5)
    module = build_min_module(program)
    func = specialize_min(module, program, use_intrinsics=False,
                          name="min_sum_golden")
    verify_function(func, module)
    assert VM(module).call(func.name,
                           [PROGRAM_BASE, len(program.words), 0]) == 15
    check_golden(request, "min_sum_residual", print_function(func))


def test_lua_gcd_residual_golden(request):
    """Full-pipeline residual IR for a MiniLua gcd function."""
    runtime = LuaRuntime(LUA_GCD_SRC)
    runtime.aot_compile()
    vm = runtime.run_aot()
    assert runtime.printed == [21]
    func = runtime.module.functions["lua$gcd"]
    verify_function(func, runtime.module)
    check_golden(request, "lua_gcd_residual", print_function(func))
