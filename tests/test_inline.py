"""Unit tests for speculative call-site inlining (PR 8).

Covers the :mod:`repro.opt.inline` pass on hand-built modules (splice
shape, both miss-block forms, polymorphic dispatch chains, hard-error
plan validation), the VM/backend agreement on inlined residuals
(results, deopt rollback, site-miss notification, and exhaustive
fuel-limit sweeps across both emit modes), serialization round-trips
for the new guard imm forms and request inline plans, and the
controller's per-*site* demotion policy end-to-end on a MiniJS
phase-change workload.
"""

import dataclasses

import pytest

from repro.backend import EMIT_MODES, compile_function
from repro.core.cache import function_fingerprint
from repro.core.request import Runtime, SpecializationRequest
from repro.core.specialize import SpecializeOptions
from repro.core.stats import PipelineStats
from repro.ir import FunctionBuilder, I64, Module, Signature
from repro.ir.verifier import verify_function
from repro.jsvm import JSRuntime
from repro.opt.inline import (
    INLINE_HARD_CAP,
    InlineError,
    apply_inline_plan,
    enumerate_call_sites,
)
from repro.pipeline.serialize import (
    function_from_dict,
    function_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.vm import VM
from repro.vm.machine import GuardFailed, OutOfFuel

SIG1 = Signature((I64,), (I64,))
SCRATCH = 256  # heap cell the effectful caller bumps before its call


def _leaf(name: str, op: str, k: int):
    """x -> x <op> k, the inlinable callee shape."""
    fb = FunctionBuilder(name, SIG1)
    x = fb.entry.params[0][0]
    fb.ret(fb.binop(op, x, fb.iconst(k)))
    return fb.finish()


def _caller(name: str, effectful: bool, loop_trips: int):
    """``f(sel, x)``: optionally spin a pure counted loop (backedges
    before the site), optionally bump a heap cell (a side effect before
    the site), then ``r = table[sel](x)`` in a non-entry block followed
    by a suffix (``return r + 7``) that keeps using the call's result —
    the join-block splice must preserve that dataflow.
    """
    fb = FunctionBuilder(name, Signature((I64, I64), (I64,)))
    sel = fb.entry.params[0][0]
    x = fb.entry.params[1][0]
    body = fb.new_block()
    if loop_trips:
        loop = fb.new_block([I64])
        fb.jump(loop, [fb.iconst(loop_trips)])
        fb.switch_to(loop)
        i = loop.params[0][0]
        i2 = fb.isub(i, fb.iconst(1))
        fb.br_if(fb.ine(i2, fb.iconst(0)), loop, body, [i2], [])
    else:
        fb.jump(body)
    fb.switch_to(body)
    if effectful:
        addr = fb.iconst(SCRATCH)
        fb.store64(addr, fb.iadd(fb.load64(addr), fb.iconst(1)))
    r = fb.call_indirect(SIG1, sel, [x])
    fb.ret(fb.iadd(r, fb.iconst(7)))
    return fb.finish()


def _make_module(effectful: bool = False, loop_trips: int = 0):
    """Module with three tabled leaves and a guarded caller pair; the
    un-spliced ``caller_gen`` doubles as the deopt fallback."""
    module = Module(memory_size=4096)
    for func in (_leaf("add1", "iadd", 1), _leaf("dbl", "imul", 2),
                 _leaf("flip", "ixor", 255)):
        module.add_function(func)
    index = {name: module.add_table_entry(name)
             for name in ("add1", "dbl", "flip")}
    module.add_function(_caller("caller", effectful, loop_trips))
    module.add_function(_caller("caller_gen", effectful, loop_trips))
    return module, index


def _plan(module, index, *names, site: int = 0):
    return ((site, tuple((index[n],
                          function_fingerprint(module.functions[n]))
                         for n in names)),)


def _spliced(targets=("add1",), effectful=False, loop_trips=0,
             stats=None):
    module, index = _make_module(effectful, loop_trips)
    plan = _plan(module, index, *targets)
    apply_inline_plan(module.functions["caller"], module, plan,
                      stats=stats)
    verify_function(module.functions["caller"], module)
    return module, index


def _guards(func):
    return [instr for block in func.blocks.values()
            for instr in block.instrs if instr.op == "guard"]


# ---------------------------------------------------------------------------
# Splice shape and plan validation.
# ---------------------------------------------------------------------------

class TestSplice:
    def test_clean_site_gets_unwinding_guard(self):
        stats = PipelineStats()
        module, index = _spliced(stats=stats)
        guards = _guards(module.functions["caller"])
        assert len(guards) == 1
        assert guards[0].imm == (0, (index["add1"],))  # no "resume"
        assert stats.inline_attempted == 1
        assert stats.inline_committed == 1

    def test_effectful_site_gets_resuming_guard(self):
        module, index = _spliced(effectful=True)
        guards = _guards(module.functions["caller"])
        assert len(guards) == 1
        assert guards[0].imm == (0, (index["add1"],), "resume")
        # The materialized slow path keeps the original dynamic call.
        assert any(i.op == "call_indirect"
                   for b in module.functions["caller"].blocks.values()
                   for i in b.instrs)

    def test_inlined_dispatch_runs_the_callee(self):
        module, index = _spliced()
        ref, _ = _make_module()
        for x in (0, 5, 41):
            got = VM(module).call("caller", [index["add1"], x])
            want = VM(ref).call("caller", [index["add1"], x])
            assert got == want == x + 1 + 7

    def test_polymorphic_chain_covers_both_targets(self):
        module, index = _spliced(targets=("add1", "dbl"))
        guards = _guards(module.functions["caller"])
        assert guards[0].imm[1] == tuple(sorted(
            (index["add1"], index["dbl"])))
        for name, want in (("add1", 5 + 1 + 7), ("dbl", 5 * 2 + 7)):
            assert VM(module).call("caller", [index[name], 5]) == want
        with pytest.raises(GuardFailed):
            VM(module).call("caller", [index["flip"], 5])

    def test_site_result_feeds_the_suffix(self):
        # return r + 7 after the splice: the join block must own the
        # original result id.  (Covered implicitly above; pinned here.)
        module, index = _spliced(targets=("dbl",))
        assert VM(module).call("caller", [index["dbl"], 9]) == 25

    def test_sites_enumerate_in_block_id_order(self):
        module, _ = _make_module()
        sites = list(enumerate_call_sites(module.functions["caller"]))
        assert [s[0] for s in sites] == [0]
        assert sites[0][3].op == "call_indirect"

    def test_self_inlining_skipped(self):
        module, index = _make_module()
        caller = module.functions["caller"]
        self_idx = module.add_table_entry("caller")
        plan = ((0, ((self_idx, function_fingerprint(caller)),)),)
        apply_inline_plan(caller, module, plan)
        assert not _guards(caller)  # site left as the dynamic call

    def test_oversized_callee_rejected_with_stats(self):
        module, index = _make_module()
        fb = FunctionBuilder("huge", SIG1)
        acc = fb.entry.params[0][0]
        for _ in range(INLINE_HARD_CAP + 1):
            acc = fb.iadd(acc, fb.iconst(1))
        fb.ret(acc)
        module.add_function(fb.finish())
        huge_idx = module.add_table_entry("huge")
        stats = PipelineStats()
        plan = ((0, ((huge_idx,
                      function_fingerprint(module.functions["huge"])),)),)
        apply_inline_plan(module.functions["caller"], module, plan,
                          stats=stats)
        assert stats.inline_rejected_size == 1
        assert not _guards(module.functions["caller"])

    def test_fingerprint_mismatch_is_a_hard_error(self):
        module, index = _make_module()
        plan = ((0, ((index["add1"], "not-the-fingerprint"),)),)
        with pytest.raises(InlineError, match="fingerprint"):
            apply_inline_plan(module.functions["caller"], module, plan)

    def test_unknown_site_is_a_hard_error(self):
        module, index = _make_module()
        with pytest.raises(InlineError, match="unknown site"):
            apply_inline_plan(module.functions["caller"], module,
                              _plan(module, index, "add1", site=3))

    def test_null_table_slot_is_a_hard_error(self):
        module, index = _make_module()
        plan = ((0, ((0, "x"),)),)
        with pytest.raises(InlineError, match="table"):
            apply_inline_plan(module.functions["caller"], module, plan)


# ---------------------------------------------------------------------------
# Miss-path semantics: unwinding deopt and resuming site-miss notify.
# ---------------------------------------------------------------------------

class TestMissPaths:
    def test_unwinding_miss_raises_with_site_attribution(self):
        module, index = _spliced()
        with pytest.raises(GuardFailed) as excinfo:
            VM(module).call("caller", [index["dbl"], 3])
        assert excinfo.value.function == "caller"
        assert excinfo.value.site == 0

    @pytest.mark.parametrize("backend", ["vm"] + list(EMIT_MODES))
    def test_unwinding_deopt_is_observably_generic(self, backend):
        """A guard miss deep in the body (after a counted loop's
        backedges) rolls back to the pre-call snapshot and re-runs the
        generic caller: results AND every counter — fuel, loads,
        stores, backedges — match a VM that never specialized."""
        module, index = _spliced(loop_trips=5)
        vm = VM(module)
        vm.deopt_fallbacks["caller"] = "caller_gen"
        if backend in EMIT_MODES:
            compiled = compile_function(module.functions["caller"],
                                        module, mode=backend)
            vm.install_compiled({"caller": compiled.pyfunc})
        deopts = []
        vm.deopt_hook = lambda name, site=None: deopts.append((name, site))
        ref_module, _ = _make_module(loop_trips=5)
        ref = VM(ref_module)
        got = vm.call("caller", [index["dbl"], 3])
        want = ref.call("caller_gen", [index["dbl"], 3])
        assert got == want
        assert deopts == [("caller", 0)]
        assert vm.stats.fuel == ref.stats.fuel
        assert vm.stats.loads == ref.stats.loads
        assert vm.stats.stores == ref.stats.stores
        assert vm.stats.backedges == ref.stats.backedges

    @pytest.mark.parametrize("backend", ["vm"] + list(EMIT_MODES))
    def test_resuming_miss_notifies_and_continues(self, backend):
        """The effectful caller's miss block re-issues the dynamic call
        in place: no unwind, identical result and side-effect count,
        one site-miss notification."""
        module, index = _spliced(effectful=True)
        vm = VM(module)
        if backend in EMIT_MODES:
            compiled = compile_function(module.functions["caller"],
                                        module, mode=backend)
            vm.install_compiled({"caller": compiled.pyfunc})
        misses = []
        vm.site_miss_hook = lambda name, site: misses.append((name, site))
        ref_module, _ = _make_module(effectful=True)
        ref = VM(ref_module)
        got = vm.call("caller", [index["dbl"], 4])
        want = ref.call("caller_gen", [index["dbl"], 4])
        assert got == want == 4 * 2 + 7
        assert misses == [("caller", 0)]
        assert vm.load_u64(SCRATCH) == 1  # prefix effect ran exactly once

    def test_resuming_hit_does_not_notify(self):
        module, index = _spliced(effectful=True)
        vm = VM(module)
        misses = []
        vm.site_miss_hook = lambda name, site: misses.append((name, site))
        assert vm.call("caller", [index["add1"], 4]) == 4 + 1 + 7
        assert misses == []


# ---------------------------------------------------------------------------
# Backend agreement: results and exhaustive fuel sweeps, both emit modes.
# ---------------------------------------------------------------------------

def _run_limited(module, compiled_fn, args, fuel_limit):
    vm = VM(module, fuel_limit=fuel_limit)
    if compiled_fn is not None:
        vm.install_compiled({"caller": compiled_fn})
    vm.deopt_fallbacks["caller"] = "caller_gen"
    try:
        return ("ok", vm.call("caller", list(args)), vm.stats.fuel)
    except OutOfFuel:
        return ("out-of-fuel", None, None)


class TestEmitAgreement:
    @pytest.mark.parametrize("effectful", [False, True])
    def test_fuel_identical_across_modes(self, effectful):
        module, index = _spliced(targets=("add1", "dbl"),
                                 effectful=effectful, loop_trips=3)
        compiled = {mode: compile_function(module.functions["caller"],
                                           module, mode=mode)
                    for mode in EMIT_MODES}
        for sel in ("add1", "dbl", "flip"):
            args = (index[sel], 6)
            reference = _run_limited(module, None, args, None)
            assert reference[0] == "ok"
            for mode in EMIT_MODES:
                got = _run_limited(module, compiled[mode].pyfunc, args,
                                   None)
                assert got == reference, (
                    f"sel {sel} mode {mode}: {got!r} != {reference!r}")

    @pytest.mark.parametrize("effectful", [False, True])
    def test_exhaustive_fuel_limit_sweep(self, effectful):
        """OutOfFuel agreement at every limit up to a full run, on both
        the inlined fast path and the miss path: fuel batching in the
        compiled tiers must trap at the exact VM boundary even through
        mid-function guards and deopt re-dispatch."""
        module, index = _spliced(effectful=effectful, loop_trips=3)
        compiled = {mode: compile_function(module.functions["caller"],
                                           module, mode=mode)
                    for mode in EMIT_MODES}
        for sel in ("add1", "dbl"):  # hit path and miss path
            args = (index[sel], 6)
            full = _run_limited(module, None, args, None)[2]
            for limit in range(1, full + 1):
                reference = _run_limited(module, None, args, limit)
                for mode in EMIT_MODES:
                    got = _run_limited(module, compiled[mode].pyfunc,
                                       args, limit)
                    assert got == reference, (
                        f"sel {sel} limit {limit} mode {mode}: "
                        f"{got!r} != {reference!r}")


# ---------------------------------------------------------------------------
# Serialization: guard imm forms and request inline plans.
# ---------------------------------------------------------------------------

class TestSerialization:
    @pytest.mark.parametrize("effectful", [False, True])
    def test_spliced_function_round_trips(self, effectful):
        module, _ = _spliced(targets=("add1", "dbl"), effectful=effectful)
        func = module.functions["caller"]
        payload = function_to_dict(func)
        import json
        restored = function_from_dict(json.loads(json.dumps(payload)))
        verify_function(restored, module)
        assert function_to_dict(restored) == payload
        assert [i.imm for i in _guards(restored)] == \
            [i.imm for i in _guards(func)]

    def test_request_inline_plan_round_trips(self):
        request = SpecializationRequest(
            "caller", [Runtime(), Runtime()], specialized_name="spec",
            inline_plan=((0, ((2, "aa"), (3, "bb"))), (4, ((1, "cc"),))))
        restored = request_from_dict(request_to_dict(request))
        assert restored.inline_plan == request.inline_plan
        assert restored.cache_key() == request.cache_key()

    def test_plain_request_decodes_with_empty_plan(self):
        request = SpecializationRequest("caller", [Runtime()],
                                        specialized_name="spec")
        data = request_to_dict(request)
        data.pop("inline_plan", None)  # pre-PR-8 artifact shape
        assert request_from_dict(data).inline_plan == ()

    def test_plan_changes_name_and_cache_key(self):
        base = SpecializationRequest("caller", [Runtime()])
        planned = dataclasses.replace(
            base, inline_plan=((0, ((2, "aa"),)),))
        assert planned.name() != base.name()
        assert planned.cache_key() != base.cache_key()


# ---------------------------------------------------------------------------
# Controller policy: per-site demotion on a MiniJS phase change.
# ---------------------------------------------------------------------------

# The warm-up loop drives ``inc`` to tier 2 *before* ``apply``'s
# profiling window opens: a staged callee's dispatch slot stays
# un-patched until its own tier-2 install, so ``apply``'s site only
# observes (and the controller only inlines) callees that are already
# compiled — exactly the steady-state chains worth splicing.
PHASE_CHANGE_SRC = "\n".join([
    "function inc(x) { return x + 1; }",
    "function dbl(x) { return x * 2; }",
    "function apply(f, x) { return f(x); }",
    "var w = 0;",
    "var k = 0;",
    "while (k < 8) { w = inc(w); k = k + 1; }",
    "var t = w;",
    "var i = 0;",
    "while (i < 30) { t = t + apply(inc, i); i = i + 1; }",
    "var j = 0;",
    "while (j < 30) { t = t + apply(dbl, j); j = j + 1; }",
    "print(t);",
])


class TestControllerInline:
    def test_inline_requires_staged_tier2_window(self):
        runtime = JSRuntime(PHASE_CHANGE_SRC, "wevaled",
                            options=SpecializeOptions(backend="py"))
        with pytest.raises(ValueError, match="staged"):
            runtime.run_tiered(threshold=2, inline=True)

    def test_phase_change_demotes_site_exactly_once(self):
        """The ``apply`` dispatch site is speculated on ``inc`` during
        the profiling window; the mid-run switch to ``dbl`` must miss
        the polymorphic guard, demote that one *site* exactly once,
        respecialize without it, and keep the output identical to the
        interpreter."""
        reference = JSRuntime(PHASE_CHANGE_SRC, "interp_ic")
        reference.run()
        runtime = JSRuntime(PHASE_CHANGE_SRC, "wevaled",
                            options=SpecializeOptions(backend="py"))
        runtime.run_tiered(threshold=2, compile_threshold=3,
                           inline=True, inline_min_site_calls=2)
        assert runtime.printed == reference.printed
        stats = runtime.controller.stats
        assert stats.inline_sites_planned >= 1
        assert stats.site_misses >= 1
        assert stats.site_demotions == 1  # one site, exactly once
        # The whole-function speculation machinery was not involved.
        assert stats.demotions == 0

    def test_inline_off_is_unchanged(self):
        """``inline=False`` staged tier-2 plans nothing and keeps its
        existing behavior byte for byte (prints and fuel)."""
        reference = JSRuntime(PHASE_CHANGE_SRC, "wevaled",
                              options=SpecializeOptions(backend="py"))
        vm_ref = reference.run_tiered(threshold=2, compile_threshold=3)
        runtime = JSRuntime(PHASE_CHANGE_SRC, "wevaled",
                            options=SpecializeOptions(backend="py"))
        vm_off = runtime.run_tiered(threshold=2, compile_threshold=3,
                                    inline=False)
        assert runtime.printed == reference.printed
        assert vm_off.stats.fuel == vm_ref.stats.fuel
        assert runtime.controller.stats.inline_sites_planned == 0
