"""Unit tests for the IR substrate: builder, verifier, printer, CFG."""

import pytest

from repro.ir import (
    DominatorTree,
    F64,
    FunctionBuilder,
    I64,
    Module,
    Signature,
    VerificationError,
    predecessors,
    print_function,
    retreating_edges,
    reverse_postorder,
    successors,
    verify_function,
    verify_module,
)
from repro.ir.clone import clone_function


def make_loop_function():
    fb = FunctionBuilder("loop", Signature((I64,), (I64,)))
    n = fb.entry.params[0][0]
    header = fb.new_block([I64, I64])
    body = fb.new_block()
    exit_b = fb.new_block([I64])
    zero = fb.iconst(0)
    fb.jump(header, [zero, zero])
    fb.switch_to(header)
    i, acc = header.param_values()
    cond = fb.ilt_u(i, n)
    fb.br_if(cond, body, exit_b, [], [acc])
    fb.switch_to(body)
    one = fb.iconst(1)
    acc2 = fb.iadd(acc, i)
    i2 = fb.iadd(i, one)
    fb.jump(header, [i2, acc2])
    fb.switch_to(exit_b)
    fb.ret(exit_b.param_values()[0])
    return fb.finish()


class TestBuilder:
    def test_builds_valid_function(self):
        func = make_loop_function()
        verify_function(func)

    def test_entry_params_match_signature(self):
        func = make_loop_function()
        assert [t for _, t in func.entry_block().params] == [I64]

    def test_value_types_recorded(self):
        fb = FunctionBuilder("t", Signature((I64, F64), (F64,)))
        x = fb.entry.params[1][0]
        y = fb.emit("fadd", (x, x))
        fb.ret(y)
        func = fb.finish()
        assert func.type_of(y) == F64

    def test_counts(self):
        func = make_loop_function()
        assert func.num_blocks() == 4
        assert func.num_instrs() == 5
        # header has 2 params, exit has 1; entry params don't count.
        assert func.total_block_params() == 3


class TestCfg:
    def test_successors(self):
        func = make_loop_function()
        succs = successors(func, func.entry)
        assert len(succs) == 1

    def test_predecessors(self):
        func = make_loop_function()
        preds = predecessors(func)
        header = succ = successors(func, func.entry)[0]
        assert len(preds[header]) == 2  # entry + backedge

    def test_reverse_postorder_starts_at_entry(self):
        func = make_loop_function()
        rpo = reverse_postorder(func)
        assert rpo[0] == func.entry
        assert len(rpo) == 4

    def test_retreating_edges_finds_the_backedge(self):
        func = make_loop_function()
        header = successors(func, func.entry)[0]
        body = successors(func, header)[0]
        assert retreating_edges(func) == frozenset({(body, header)})


class TestDominance:
    def test_entry_dominates_all(self):
        func = make_loop_function()
        dom = DominatorTree(func)
        for bid in func.blocks:
            assert dom.dominates(func.entry, bid)

    def test_header_dominates_body_and_exit(self):
        func = make_loop_function()
        dom = DominatorTree(func)
        header = successors(func, func.entry)[0]
        for succ in successors(func, header):
            assert dom.dominates(header, succ)
            assert not dom.dominates(succ, header)

    def test_lca(self):
        func = make_loop_function()
        dom = DominatorTree(func)
        header = successors(func, func.entry)[0]
        body, exit_b = successors(func, header)
        assert dom.lowest_common_ancestor(body, exit_b) == header


class TestVerifier:
    def test_detects_missing_terminator(self):
        fb = FunctionBuilder("bad", Signature((), ()))
        func = fb.finish()
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(func)

    def test_detects_type_mismatch(self):
        fb = FunctionBuilder("bad", Signature((I64, F64), (I64,)))
        x = fb.entry.params[0][0]
        y = fb.entry.params[1][0]
        fb.current.instrs.append(
            __import__("repro.ir.instructions", fromlist=["Instr"]).Instr(
                "iadd", fb.func.new_value(I64), (x, y), None, I64))
        fb.ret(x)
        with pytest.raises(VerificationError, match="type"):
            verify_function(fb.finish())

    def test_detects_use_before_def_across_blocks(self):
        fb = FunctionBuilder("bad", Signature((I64,), (I64,)))
        a = fb.new_block()
        b = fb.new_block()
        cond = fb.entry.params[0][0]
        fb.br_if(cond, a, b)
        fb.switch_to(a)
        v = fb.iconst(1)
        fb.ret(v)
        fb.switch_to(b)
        fb.ret(v)  # v defined in a, does not dominate b
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(fb.finish())

    def test_detects_branch_arity_mismatch(self):
        fb = FunctionBuilder("bad", Signature((), ()))
        target = fb.new_block([I64])
        fb.jump(target, [])  # missing arg
        fb.switch_to(target)
        fb.ret()
        with pytest.raises(VerificationError, match="passes"):
            verify_function(fb.finish())

    def test_module_call_signature_check(self):
        module = Module(memory_size=4096)
        callee = FunctionBuilder("callee", Signature((I64,), (I64,)))
        callee.ret(callee.entry.params[0][0])
        module.add_function(callee.finish())
        caller = FunctionBuilder("caller", Signature((), ()))
        caller.call("callee", [], result_type=I64)  # wrong arity
        caller.ret()
        module.add_function(caller.finish())
        with pytest.raises(VerificationError, match="arg count"):
            verify_module(module)


class TestPrinter:
    def test_prints_all_blocks(self):
        text = print_function(make_loop_function())
        assert text.count("block") >= 4
        assert "br_if" in text
        assert "func @loop" in text

    def test_stable_under_clone(self):
        func = make_loop_function()
        clone = clone_function(func)
        assert print_function(func, "id") == print_function(clone, "id")


class TestClone:
    def test_clone_is_independent(self):
        func = make_loop_function()
        clone = clone_function(func, "other")
        clone.blocks[clone.entry].instrs.clear()
        assert func.blocks[func.entry].instrs  # original untouched
        assert clone.name == "other"


class TestModule:
    def test_memory_init_roundtrip(self):
        module = Module(memory_size=4096)
        module.write_init_u64(64, 0xDEADBEEF)
        assert module.read_init_u64(64) == 0xDEADBEEF

    def test_init_out_of_range(self):
        module = Module(memory_size=64)
        with pytest.raises(ValueError):
            module.write_init_u64(60, 1)

    def test_table(self):
        module = Module(memory_size=64)
        fb = FunctionBuilder("f", Signature((), ()))
        fb.ret()
        module.add_function(fb.finish())
        index = module.add_table_entry("f")
        assert index == 1  # slot 0 is reserved null
        assert module.table[index] == "f"

    def test_duplicate_function_rejected(self):
        module = Module(memory_size=64)
        fb = FunctionBuilder("f", Signature((), ()))
        fb.ret()
        module.add_function(fb.finish())
        fb2 = FunctionBuilder("f", Signature((), ()))
        fb2.ret()
        with pytest.raises(ValueError):
            module.add_function(fb2.finish())
