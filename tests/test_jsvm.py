"""Tests for the MiniJS case study (S6)."""

import pytest

from repro.jsvm import JSRuntime
from repro.jsvm.frontend import JSCompileError, compile_js
from repro.jsvm.native import NATIVE_TIERS, PyEngine
from repro.jsvm.shapes import NameTable, ShapeTable
from repro.jsvm.values import (
    IC_FAIL,
    VALUE_FALSE,
    VALUE_NULL,
    VALUE_TRUE,
    VALUE_UNDEFINED,
    box_bool,
    box_double,
    box_function,
    box_object,
    describe,
    is_double,
    truthy,
    unbox_double,
)
from repro.jsvm.workloads import WORKLOADS


class TestValues:
    @pytest.mark.parametrize("value", [0.0, 1.5, -2.25, 1e300, -0.0])
    def test_double_roundtrip(self, value):
        assert unbox_double(box_double(value)) == value
        assert is_double(box_double(value))

    def test_boxed_values_are_not_doubles(self):
        for boxed in (VALUE_TRUE, VALUE_FALSE, VALUE_NULL,
                      VALUE_UNDEFINED, box_object(0x1000),
                      box_function(3)):
            assert not is_double(boxed)

    def test_ic_fail_is_not_a_value(self):
        assert not is_double(IC_FAIL)
        assert IC_FAIL != box_double(float("nan"))

    def test_truthiness(self):
        assert truthy(VALUE_TRUE)
        assert not truthy(VALUE_FALSE)
        assert not truthy(VALUE_NULL)
        assert not truthy(VALUE_UNDEFINED)
        assert not truthy(box_double(0.0))
        assert not truthy(box_double(float("nan")))
        assert truthy(box_double(3.5))
        assert truthy(box_object(0x40))

    def test_describe(self):
        assert describe(box_double(3.0)) == "3"
        assert describe(VALUE_TRUE) == "true"
        assert describe(box_bool(False)) == "false"
        assert describe(VALUE_NULL) == "null"


class TestShapes:
    def test_literal_shapes_are_canonical(self):
        shapes = ShapeTable()
        a = shapes.shape_for_literal((1, 2))
        b = shapes.shape_for_literal((1, 2))
        c = shapes.shape_for_literal((2, 1))
        assert a == b
        assert a != c

    def test_transition_chain(self):
        shapes = ShapeTable()
        s0 = shapes.empty
        s1 = shapes.transition(s0, 5)
        s2 = shapes.transition(s1, 9)
        assert shapes.lookup(s2, 5) == 0
        assert shapes.lookup(s2, 9) == 1
        assert shapes.transition(s0, 5) == s1  # cached

    def test_name_interning(self):
        names = NameTable()
        assert names.intern("x") == names.intern("x")
        assert names.intern("x") != names.intern("y")
        assert names.name_of(names.intern("x")) == "x"


class TestFrontend:
    def test_function_collection_and_this(self):
        compiled = compile_js("""
function m() { return this.v; }
var o = {v: 7, m: m};
print(o.m());
""")
        assert [f.name for f in compiled.functions] == ["main", "m"]
        assert compiled.functions[1].num_params == 1  # implicit this

    def test_undeclared_variable(self):
        with pytest.raises(JSCompileError, match="undeclared"):
            compile_js("print(zzz);")

    def test_break_outside_loop(self):
        with pytest.raises(JSCompileError, match="break"):
            compile_js("break;")

    def test_stack_depth_tracked(self):
        compiled = compile_js("print(1 + 2 * (3 + 4));")
        assert compiled.functions[0].max_stack >= 3


def run_js(source, config="interp_ic"):
    rt = JSRuntime(source, config)
    rt.run()
    return rt.printed


class TestEngineSemantics:
    @pytest.mark.parametrize("config", ["noic", "interp_ic"])
    def test_arithmetic(self, config):
        assert run_js("print(1 + 2 * 3);", config) == ["7"]
        assert run_js("print(7 % 3);", config) == ["1"]
        assert run_js("print(10 / 4);", config) == ["2.5"]
        assert run_js("print(-3 + 1);", config) == ["-2"]

    @pytest.mark.parametrize("config", ["noic", "interp_ic"])
    def test_logic_and_control(self, config):
        assert run_js("print(1 < 2 && 3 < 4);", config) == ["true"]
        assert run_js("print(!0);", config) == ["true"]
        src = """
var total = 0;
for (var i = 0; i < 10; i++) {
  if (i % 2 == 0) { total = total + i; }
}
print(total);
"""
        assert run_js(src, config) == ["20"]

    def test_objects_and_methods(self):
        src = """
function getX() { return this.x; }
var p = {x: 42, getX: getX};
print(p.getX());
p.x = 7;
print(p.getX());
"""
        assert run_js(src) == ["42", "7"]

    def test_shape_transition_at_runtime(self):
        src = """
var o = {a: 1};
o.b = 2;
print(o.a + o.b);
"""
        assert run_js(src) == ["3"]

    def test_missing_property_is_undefined(self):
        assert run_js("var o = {a: 1}; print(o.nope);") == ["undefined"]

    def test_arrays_grow_by_append(self):
        src = """
var a = [1, 2];
a[2] = 3;
print(a.length3 == undefined);
print(a[0] + a[1] + a[2]);
"""
        assert run_js("var a = [1, 2]; a[2] = 3; print(a[2]);") == ["3"]

    def test_array_oob_traps(self):
        with pytest.raises(RuntimeError, match="error #5"):
            run_js("var a = [1]; print(a[5]);")

    def test_call_of_non_function_traps(self):
        with pytest.raises(RuntimeError, match="error #3"):
            run_js("var f = 3; f(1);")

    def test_function_values(self):
        src = """
function inc(ignored, x) { return x + 1; }
var f = inc;
print(f(0, 41));
"""
        assert run_js(src) == ["42"]


class TestICBehaviour:
    def test_ics_attach_and_hit(self):
        src = """
function get(o) { return o.v; }
var o = {v: 5};
var total = 0;
for (var i = 0; i < 20; i++) { total = total + get(o); }
print(total);
"""
        rt = JSRuntime(src, "interp_ic")
        rt.run()
        assert rt.printed == ["100"]
        # One slow call attaches the stub; the rest hit the IC.
        assert rt.slow_getprop_calls <= 2
        assert rt.ic_attaches >= 1

    def test_noic_always_takes_slow_path(self):
        src = """
function get(o) { return o.v; }
var o = {v: 5};
var total = 0;
for (var i = 0; i < 20; i++) { total = total + get(o); }
print(total);
"""
        rt = JSRuntime(src, "noic")
        rt.run()
        assert rt.slow_getprop_calls >= 20

    def test_polymorphic_site_chains_stubs(self):
        src = """
function get(o) { return o.v; }
var a = {v: 1};
var b = {v: 2, w: 3};
var total = 0;
for (var i = 0; i < 10; i++) { total = total + get(a) + get(b); }
print(total);
"""
        rt = JSRuntime(src, "interp_ic")
        rt.run()
        assert rt.printed == ["30"]
        assert rt.ic_attaches >= 2  # one stub per shape on the chain


class TestAotConfigs:
    @pytest.mark.parametrize("name", ["crypto", "splay"])
    def test_all_configs_agree(self, name):
        outputs = {}
        for config in ("noic", "interp_ic", "wevaled", "wevaled_state"):
            rt = JSRuntime(WORKLOADS[name], config)
            rt.run()
            outputs[config] = tuple(rt.printed)
        assert len(set(outputs.values())) == 1

    def test_aot_appends_functions_and_patches_spec(self):
        rt = JSRuntime("function f(){ return 1; } print(f());",
                       "wevaled")
        rt.aot_compile()
        vm = rt.compiler.resume()
        for func in rt.compiled.functions:
            spec = vm.load_u64(rt.func_addrs[func.index] + 64)
            assert spec != 0

    def test_specialized_run_reduces_fuel(self):
        src = WORKLOADS["crypto"]
        base = JSRuntime(src, "interp_ic")
        vm_base = base.run()
        spec = JSRuntime(src, "wevaled_state")
        vm_spec = spec.run()
        assert spec.printed == base.printed
        assert vm_spec.stats.fuel < vm_base.stats.fuel / 2


class TestNativeTiers:
    @pytest.mark.parametrize("tier", NATIVE_TIERS)
    def test_tier_matches_vm_engine(self, tier):
        src = WORKLOADS["richards"]
        engine = PyEngine(src, tier)
        engine.run()
        rt = JSRuntime(src, "interp_ic")
        rt.run()
        assert engine.printed == rt.printed

    def test_optimized_tier_uses_profile(self):
        engine = PyEngine(WORKLOADS["richards"], "optimized")
        engine.run()
        assert engine._profiled_shapes  # profiling happened
