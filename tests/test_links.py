"""Call-link table tests (PR 10): the call-boundary fast path.

Three layers:

* **unit** — :class:`~repro.pipeline.links.CallLinkTable` mechanics on
  hand-built IR modules: direct slots patch after the first call,
  inline caches fill on an indirect hit, ``invalidate()`` resets every
  slot *in place* (identity-stable lists, so in-flight frames observe
  the reset), the probe refuses every non-steady callee shape, and the
  ``REPRO_LINK_CALLS=0`` kill switch keeps every bridge permanently
  slow;
* **fast-path regression** — linking on vs off must be bit-identical in
  results and in *every* execution counter (fuel, calls, indirect
  calls, host calls): the link is taken only where the slow path would
  have been a straight ``vm.compiled[name](vm, *args)``;
* **invalidation matrix** — every dispatch-changing event resets the
  table: tier-2 install, whole-function demotion, per-site demotion,
  blacklist, deopt-storm pinning, ``unregister`` / endpoint churn at a
  reused heap base, fleet heat adoption, and a seeded chaos schedule
  with linking enabled throughout.
"""

import pytest

from repro.backend import compile_function
from repro.core.specialize import SpecializeOptions
from repro.ir import FunctionBuilder
from repro.ir.function import Signature
from repro.ir.module import Module
from repro.ir.types import I64
from repro.jsvm import JSRuntime
from repro.min.harness import make_tiered_min, sum_to_n_program
from repro.min.interp import PROGRAM_BASE, build_min_module
from repro.pipeline.faults import SEAMS, FaultPlan
from repro.pipeline.links import CallLinkTable
from repro.pipeline.profiles import ProfileStore
from repro.vm import VM, VMTrap


def _args(program, value):
    return [PROGRAM_BASE, len(program.words), value]


# ---------------------------------------------------------------------------
# Hand-built IR: one caller with a direct site and an indirect site.
# ---------------------------------------------------------------------------

def _callee_func(name="callee"):
    fb = FunctionBuilder(name, Signature((I64, I64), (I64,)))
    a = fb.entry.params[0][0]
    b = fb.entry.params[1][0]
    fb.ret(fb.emit("iadd", (a, b)))
    return fb.func


def _caller_module(indirect=False):
    """``caller(x) = callee(x, 7) + callee(x, 7)`` — two direct sites,
    or two indirect sites through table index 1."""
    module = Module()
    module.add_function(_callee_func())
    fb = FunctionBuilder("caller", Signature((I64,), (I64,)))
    x = fb.entry.params[0][0]
    seven = fb.iconst(7)
    if indirect:
        index = fb.iconst(1)
        r1 = fb.emit("call_indirect", (index, x, seven), result_type=I64)
        r2 = fb.emit("call_indirect", (index, x, seven), result_type=I64)
    else:
        r1 = fb.emit("call", (x, seven), imm="callee", result_type=I64)
        r2 = fb.emit("call", (x, seven), imm="callee", result_type=I64)
    fb.ret(fb.emit("iadd", (r1, r2)))
    module.add_function(fb.func)
    if indirect:
        module.add_table_entry("callee")
    return module


def _vm_with_compiled(module, linked=True):
    vm = VM(module)
    vm.install_compiled({
        name: compile_function(module.functions[name], module).pyfunc
        for name in ("caller", "callee")})
    if not linked:
        vm.links.enabled = False
        vm.links.invalidate()
    return vm


class TestDirectLinking:
    def test_first_call_links_then_stays_linked(self):
        vm = _vm_with_compiled(_caller_module())
        assert vm.links.linked_count() == 0
        assert vm.call("caller", [5]) == 24
        # Both sites ran their bridge once and patched.
        assert vm.links.links_made == 2
        assert vm.links.linked_count() == 2
        assert vm.call("caller", [5]) == 24

    def test_linked_run_is_fuel_identical(self):
        linked = _vm_with_compiled(_caller_module())
        unlinked = _vm_with_compiled(_caller_module(), linked=False)
        for value in (0, 5, 123):
            assert linked.call("caller", [value]) == \
                unlinked.call("caller", [value])
        assert unlinked.links.links_made == 0
        assert linked.stats.fuel == unlinked.stats.fuel
        assert linked.stats.calls == unlinked.stats.calls

    def test_invalidate_resets_in_place(self):
        vm = _vm_with_compiled(_caller_module())
        vm.call("caller", [1])
        slots = vm._link_slots["caller"]
        assert not hasattr(slots[0], "_link_bridge")
        epoch = vm.links.epoch
        vm.links.invalidate()
        assert vm.links.epoch == epoch + 1
        # Same list object (in-flight frames hold it), bridges restored.
        assert vm._link_slots["caller"] is slots
        assert hasattr(slots[0], "_link_bridge")
        assert vm.links.linked_count() == 0
        # And it relinks on the next call.
        assert vm.call("caller", [2]) == 18
        assert vm.links.links_made == 4

    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LINK_CALLS", "0")
        vm = _vm_with_compiled(_caller_module())
        assert not vm.links.enabled
        assert vm.call("caller", [3]) == 20
        assert vm.links.links_made == 0
        assert vm.links.linked_count() == 0

    def test_install_compiled_invalidates_and_rebinds(self):
        module = _caller_module()
        vm = _vm_with_compiled(module)
        vm.call("caller", [1])
        assert vm.links.linked_count() == 2
        epoch = vm.links.epoch
        # Reinstalling any function must drop every link (the callee
        # identity behind a patched slot may have changed).
        vm.install_compiled({
            "callee": compile_function(module.functions["callee"],
                                       module).pyfunc})
        assert vm.links.epoch > epoch
        assert vm.links.linked_count() == 0
        assert vm.call("caller", [1]) == 16


class TestIndirectLinking:
    def test_ic_fills_and_resets(self):
        vm = _vm_with_compiled(_caller_module(indirect=True))
        assert vm.call("caller", [5]) == 24
        assert vm.links.ic_links_made == 2
        ic = vm._link_slots["caller"][0]
        assert ic[0] == 1 and ic[1] is not None
        # The linked IC path is charged like vm.call_table.
        fuel_before = vm.stats.fuel
        indirect_before = vm.stats.indirect_calls
        assert vm.call("caller", [5]) == 24
        linked_fuel = vm.stats.fuel - fuel_before
        assert vm.stats.indirect_calls == indirect_before + 2
        vm.links.invalidate()
        assert ic[0] == -1 and ic[1] is None
        fuel_before = vm.stats.fuel
        assert vm.call("caller", [5]) == 24
        assert vm.stats.fuel - fuel_before == linked_fuel

    def test_ic_fuel_identical_to_unlinked(self):
        linked = _vm_with_compiled(_caller_module(indirect=True))
        unlinked = _vm_with_compiled(_caller_module(indirect=True),
                                     linked=False)
        for value in (0, 9, 40):
            assert linked.call("caller", [value]) == \
                unlinked.call("caller", [value])
        assert linked.stats.fuel == unlinked.stats.fuel
        assert linked.stats.indirect_calls == unlinked.stats.indirect_calls


class TestProbeRefusals:
    def test_refuses_arity_mismatch(self):
        vm = _vm_with_compiled(_caller_module())
        assert vm.links._probe("callee", 3) is None
        assert vm.links._probe("callee", 2) is not None

    def test_refuses_uncompiled_and_imports(self):
        module = _caller_module()
        vm = _vm_with_compiled(module)
        assert vm.links._probe("nope", 2) is None
        from repro.ir.module import HostFunc
        module.add_import(HostFunc("host_fn", Signature((I64,), (I64,)),
                                   lambda vm, x: x))
        vm.compiled["host_fn"] = vm.compiled["callee"]
        assert vm.links._probe("host_fn", 2) is None

    def test_refuses_deopt_fallback_entries(self):
        vm = _vm_with_compiled(_caller_module())
        vm.deopt_fallbacks["callee"] = "callee_generic"
        assert vm.links._probe("callee", 2) is None

    def test_refuses_hooked_generics(self):
        vm = _vm_with_compiled(_caller_module())
        vm.tier_generics = frozenset({"callee"})
        assert vm.links._probe("callee", 2) is not None  # no hook yet
        vm.tier_hook = lambda name, args: None
        assert vm.links._probe("callee", 2) is None

    def test_disabled_table_refuses_everything(self):
        vm = _vm_with_compiled(_caller_module())
        vm.links.enabled = False
        assert vm.links._probe("callee", 2) is None


class TestFixedArityBoundary:
    """The unboxed calling convention must preserve the VM's observable
    call-boundary traps exactly."""

    def test_arity_trap_message_identical(self):
        vm = _vm_with_compiled(_caller_module())
        plain = VM(_caller_module())
        with pytest.raises(VMTrap) as compiled_trap:
            vm.call("callee", [1])
        with pytest.raises(VMTrap) as interp_trap:
            plain.call("callee", [1])
        assert str(compiled_trap.value) == str(interp_trap.value)

    def test_depth_exhaustion_message_identical(self):
        def recursive_module():
            module = Module()
            fb = FunctionBuilder("loop", Signature((I64,), (I64,)))
            x = fb.entry.params[0][0]
            fb.ret(fb.emit("call", (x,), imm="loop", result_type=I64))
            module.add_function(fb.func)
            return module

        module = recursive_module()
        vm = VM(module)
        vm.install_compiled({"loop": compile_function(
            module.functions["loop"], module).pyfunc})
        plain = VM(recursive_module())
        with pytest.raises(VMTrap) as compiled_trap:
            vm.call("loop", [0])
        with pytest.raises(VMTrap) as interp_trap:
            plain.call("loop", [0])
        assert str(compiled_trap.value) == str(interp_trap.value)
        # The prologue rolled its increment back on both paths.
        assert vm._call_depth == 0
        assert plain._call_depth == 0


# ---------------------------------------------------------------------------
# Fast-path regression: linking must be invisible to every counter.
# ---------------------------------------------------------------------------
class TestFastPathRegression:
    def _stats_tuple(self, vm):
        s = vm.stats
        return (s.fuel, s.calls, s.indirect_calls, s.host_calls,
                s.loads, s.stores)

    def test_tiered_min_stats_identical_linked_vs_unlinked(self):
        program = sum_to_n_program(35)
        results = {}
        for linked in (True, False):
            vm, controller = make_tiered_min(
                program, threshold=2,
                options=SpecializeOptions(backend="py"),
                compile_threshold=3)
            if not linked:
                vm.links.enabled = False
                vm.links.invalidate()
            out = [vm.call("min_interp", _args(program, v))
                   for v in (0, 1, 2, 3, 4, 5)]
            results[linked] = (out, self._stats_tuple(vm))
        assert results[True] == results[False]

    def test_jsvm_phase_change_identical_linked_vs_unlinked(self,
                                                            monkeypatch):
        def run(linked):
            if not linked:
                monkeypatch.setenv("REPRO_LINK_CALLS", "0")
            runtime = JSRuntime(PHASE_CHANGE_SRC, "wevaled",
                                options=SpecializeOptions(backend="py"))
            vm = runtime.run_tiered(threshold=2, compile_threshold=3)
            monkeypatch.delenv("REPRO_LINK_CALLS", raising=False)
            return runtime.printed, vm.stats.fuel, vm.links

        printed_on, fuel_on, links_on = run(True)
        printed_off, fuel_off, links_off = run(False)
        assert printed_on == printed_off
        assert fuel_on == fuel_off
        assert links_off.links_made == 0 and links_off.ic_links_made == 0


# ---------------------------------------------------------------------------
# The invalidation matrix: every dispatch-changing event resets slots.
# ---------------------------------------------------------------------------

PHASE_CHANGE_SRC = "\n".join([
    "function inc(x) { return x + 1; }",
    "function dbl(x) { return x * 2; }",
    "function apply(f, x) { return f(x); }",
    "var w = 0;",
    "var k = 0;",
    "while (k < 8) { w = inc(w); k = k + 1; }",
    "var t = w;",
    "var i = 0;",
    "while (i < 30) { t = t + apply(inc, i); i = i + 1; }",
    "var j = 0;",
    "while (j < 30) { t = t + apply(dbl, j); j = j + 1; }",
    "print(t);",
])


class TestInvalidationMatrix:
    def test_tier2_install_bumps_epoch(self):
        program = sum_to_n_program(30)
        vm, controller = make_tiered_min(
            program, threshold=2, options=SpecializeOptions(backend="py"),
            compile_threshold=3)
        assert vm.links.epoch > 0  # attach() itself bumps
        epoch = vm.links.epoch
        for _ in range(8):
            vm.call("min_interp", _args(program, 0))
        assert controller.stats.tier2_installs == 1
        assert vm.links.epoch > epoch

    def test_demotion_bumps_epoch_and_matches_reference(self):
        program = sum_to_n_program(25)
        vm, controller = make_tiered_min(
            program, threshold=2, speculate=True,
            options=SpecializeOptions(backend="vm"))
        ref = VM(build_min_module(program))
        epochs = []
        for value in (3, 3, 9, 3, 9, 9):
            assert vm.call("min_interp", _args(program, value)) == \
                ref.call("min_interp", _args(program, value))
            epochs.append(vm.links.epoch)
        assert controller.stats.demotions == 1
        # The deopt/demotion round moved the epoch.
        assert epochs[-1] > epochs[0]

    def test_site_demotion_resets_and_stays_correct(self):
        reference = JSRuntime(PHASE_CHANGE_SRC, "interp_ic")
        reference.run()
        runtime = JSRuntime(PHASE_CHANGE_SRC, "wevaled",
                            options=SpecializeOptions(backend="py"))
        vm = runtime.run_tiered(threshold=2, compile_threshold=3,
                                inline=True, inline_min_site_calls=2)
        assert runtime.printed == reference.printed
        assert runtime.controller.stats.site_demotions == 1
        # The respecialize + reinstall of the repaired residual reset
        # the table (install_compiled invalidates unconditionally).
        assert vm.links.epoch > 1

    def test_blacklist_bumps_epoch_under_chaos(self, tmp_path):
        from repro.min.fleet import make_fleet_worker, make_endpoints, serve
        from repro.min.fleet import sum_squares_program
        endpoints = make_endpoints([("sum", sum_to_n_program(40)),
                                    ("sq", sum_squares_program(12))])
        plan = FaultPlan.always("specialize")
        vm, controller = make_fleet_worker(
            endpoints, threshold=3,
            options=SpecializeOptions(backend="py", fault_plan=plan,
                                      cache_dir=str(tmp_path)))
        ref_vm = VM(vm.module)
        for i in range(30):
            for endpoint in endpoints:
                assert serve(vm, endpoint, i % 7) == \
                    ref_vm.call("min_interp", endpoint.args(i % 7))
        assert controller.stats.blacklists >= 1
        assert vm.links.epoch > 0

    def test_storm_pin_bumps_epoch(self):
        program = sum_to_n_program(25)
        vm, controller = make_tiered_min(
            program, threshold=2, speculate=True,
            options=SpecializeOptions(backend="vm"))
        controller.storm_deopts = 1
        ref = VM(build_min_module(program))
        epoch_before = vm.links.epoch
        for value in (3, 3, 9, 3, 9, 9, 4, 5):
            assert vm.call("min_interp", _args(program, value)) == \
                ref.call("min_interp", _args(program, value))
        assert controller.stats.storm_pins == 1
        assert vm.links.epoch > epoch_before

    def test_endpoint_churn_at_reused_base_never_stale(self):
        """A new tenant at a reused heap base must never be served
        through a link made for the previous tenant."""
        from repro.min.fleet import (
            add_endpoint,
            constant_program,
            endpoint_at,
            make_fleet_worker,
            remove_endpoint,
            serve,
            sum_squares_program,
        )
        from repro.min.harness import PyMinInterpreter
        vm, controller = make_fleet_worker(
            [], threshold=2, options=SpecializeOptions(backend="py"))
        tenants = [
            ("sum", sum_to_n_program(5)),
            ("squares", sum_squares_program(7)),
            ("admin", constant_program(3)),
            ("sum", sum_to_n_program(9)),
        ]
        expected = [PyMinInterpreter(p).run(0) for _, p in tenants]
        assert len(set(expected)) == len(expected)
        epochs = []
        for round_i, (name, program) in enumerate(tenants):
            endpoint = endpoint_at(0, name, program)
            add_endpoint(vm, controller, endpoint)
            for _ in range(4):
                assert serve(vm, endpoint) == expected[round_i]
            remove_endpoint(vm, controller, endpoint)
            epochs.append(vm.links.epoch)
        # register + install + unregister each bump: strictly monotone
        # across churn rounds.
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)

    def test_heat_adoption_bumps_epoch(self, tmp_path):
        program = sum_to_n_program(40)
        cache_dir = str(tmp_path)
        store = ProfileStore(cache_dir)
        vm_a, controller_a = make_tiered_min(
            program, threshold=3,
            options=SpecializeOptions(backend="py", cache_dir=cache_dir))
        for _ in range(5):
            vm_a.call("min_interp", _args(program, 0))
        assert controller_a.publish_heat(store)

        vm_b, controller_b = make_tiered_min(
            program, threshold=3,
            options=SpecializeOptions(backend="py", cache_dir=cache_dir))
        epoch = vm_b.links.epoch
        adopted = controller_b.adopt_heat(store)
        assert len(adopted) == 1
        assert vm_b.links.epoch > epoch
        assert vm_b.call("min_interp", _args(program, 0)) == \
            vm_a.call("min_interp", _args(program, 0))


# ---------------------------------------------------------------------------
# Chaos with linking enabled and links actually made.
# ---------------------------------------------------------------------------
class TestChaosWithLinks:
    CHAIN_SRC = "\n".join(
        [f"function c{i}(x) {{ return c{i + 1}(x + 1); }}"
         for i in range(4)] +
        ["function c4(x) { return x + 1; }",
         "function schedule(rounds) {",
         "  var total = 0;",
         "  for (var r = 0; r < rounds; r++) { total = total + c0(r); }",
         "  return total;",
         "}",
         "print(0);"])

    def _serve_all(self, runtime, vm, rounds):
        from repro.jsvm.runtime import SPEC_FIELD_WORD
        from repro.jsvm.values import VALUE_UNDEFINED, box_double, \
            unbox_double
        struct = {f.name: runtime.func_addrs[f.index]
                  for f in runtime.compiled.functions}["schedule"]
        out = []
        for r in range(rounds):
            vm.store_u64(runtime.frame_base, VALUE_UNDEFINED)
            vm.store_u64(runtime.frame_base + 8, box_double(float(r % 6)))
            spec = vm.load_u64(struct + SPEC_FIELD_WORD * 8)
            if spec:
                out.append(unbox_double(vm.call_table(
                    spec, [struct, runtime.frame_base])))
            else:
                out.append(unbox_double(vm.call(
                    runtime.generic_entry, [struct, runtime.frame_base])))
        return out

    @pytest.mark.parametrize("seed", [7, 21])
    def test_chaos_schedule_with_links_is_identical(self, tmp_path, seed,
                                                    monkeypatch):
        def run(seeded, cache_dir, linked=True):
            if not linked:
                monkeypatch.setenv("REPRO_LINK_CALLS", "0")
            plan = (FaultPlan(seed=seed, rates={s: 0.3 for s in SEAMS})
                    if seeded else None)
            options = SpecializeOptions(backend="py", fault_plan=plan,
                                        cache_dir=str(tmp_path / cache_dir))
            runtime = JSRuntime(self.CHAIN_SRC, "wevaled_state",
                                options=options)
            vm = runtime.run(mode="tiered", threshold=2,
                             compile_threshold=3)
            monkeypatch.delenv("REPRO_LINK_CALLS", raising=False)
            return self._serve_all(runtime, vm, 25), vm

        chaotic, chaotic_vm = run(True, "chaos")
        chaotic_off, chaotic_off_vm = run(True, "chaos_off", linked=False)
        clean, clean_vm = run(False, "clean")
        # Containment: faults never leak into responses (fuel may differ
        # from the clean run because faults change *which tier* serves).
        assert chaotic == clean
        # Link invisibility: with the identical fault schedule, linking
        # on vs off is bit-identical in responses and fuel.
        assert chaotic == chaotic_off
        assert chaotic_vm.stats.fuel == chaotic_off_vm.stats.fuel
        assert chaotic_vm.links.enabled
        assert chaotic_off_vm.links.ic_links_made == 0
        # The clean linked run actually patched inline caches.
        assert clean_vm.links.ic_links_made > 0
