"""Tests for the MiniLua case study (S7)."""

import pytest

from repro.luavm import LuaCompileError, LuaRuntime, compile_lua
from repro.luavm.bytecode import Op, disassemble


def run_lua(source, aot=False):
    rt = LuaRuntime(source)
    if aot:
        rt.aot_compile()
        rt.run_aot()
    else:
        rt.run_interpreted()
    return rt.printed


class TestCompiler:
    def test_proto_structure(self):
        protos = compile_lua("function f(a, b) return a + b end\n"
                             "print(f(1, 2))")
        assert [p.name for p in protos] == ["main", "f"]
        assert protos[1].num_params == 2
        assert "ADD" in disassemble(protos[1])

    def test_undeclared_variable(self):
        with pytest.raises(LuaCompileError, match="undeclared"):
            compile_lua("print(nope)")

    def test_assignment_to_undeclared(self):
        with pytest.raises(LuaCompileError, match="undeclared"):
            compile_lua("x = 1")

    def test_unknown_function(self):
        with pytest.raises(LuaCompileError, match="unknown function"):
            compile_lua("print(zig(1))")

    def test_break_outside_loop(self):
        with pytest.raises(LuaCompileError, match="break"):
            compile_lua("break")

    def test_arity_is_structural(self):
        protos = compile_lua("""
function g(x) return x end
print(g(1))
""")
        call = [protos[0].code[i:i + 4]
                for i in range(0, len(protos[0].code), 4)
                if protos[0].code[i] == Op.CALL]
        assert call  # a CALL was emitted


@pytest.mark.parametrize("aot", [False, True])
class TestSemantics:
    def test_arithmetic_and_precedence(self, aot):
        assert run_lua("print(2 + 3 * 4 - 1)", aot) == [13]
        assert run_lua("print((2 + 3) * 4)", aot) == [20]
        assert run_lua("print(7 % 3)", aot) == [1]
        assert run_lua("print(-(5) + 2)", aot) == [-3]

    def test_comparisons_and_logic(self, aot):
        assert run_lua("print(1 < 2 and 3 or 4)", aot) == [3]
        assert run_lua("print(2 < 1 and 3 or 4)", aot) == [4]
        assert run_lua("print(not 0)", aot) == [1]

    def test_if_elseif_else(self, aot):
        src = """
function cls(x)
  if x < 10 then return 1
  elseif x < 20 then return 2
  else return 3 end
end
print(cls(5))
print(cls(15))
print(cls(25))
"""
        assert run_lua(src, aot) == [1, 2, 3]

    def test_while_and_break(self, aot):
        src = """
local i = 0
local total = 0
while true do
  i = i + 1
  if i > 10 then break end
  total = total + i
end
print(total)
"""
        assert run_lua(src, aot) == [55]

    def test_numeric_for_with_step(self, aot):
        src = """
local total = 0
for i = 1, 10, 2 do
  total = total + i
end
print(total)
"""
        assert run_lua(src, aot) == [1 + 3 + 5 + 7 + 9]

    def test_recursion(self, aot):
        src = """
function fact(n)
  if n < 2 then return 1 end
  return n * fact(n - 1)
end
print(fact(8))
"""
        assert run_lua(src, aot) == [40320]

    def test_mutual_recursion(self, aot):
        src = """
function isEven(n)
  if n == 0 then return 1 end
  return isOdd(n - 1)
end
function isOdd(n)
  if n == 0 then return 0 end
  return isEven(n - 1)
end
print(isEven(10))
print(isEven(7))
"""
        assert run_lua(src, aot) == [1, 0]

    def test_signed_division(self, aot):
        assert run_lua("print((0 - 7) / 2)", aot) == [-3]
        assert run_lua("print((0 - 7) % 2)", aot) == [-1]


class TestAotPipeline:
    def test_aot_matches_interp_and_speeds_up(self):
        src = """
function work(n)
  local acc = 0
  for i = 1, n do
    acc = acc + i * i - i
  end
  return acc
end
print(work(500))
"""
        rt = LuaRuntime(src)
        vm_interp = rt.run_interpreted()
        expected = list(rt.printed)
        rt.printed.clear()
        rt.aot_compile()
        vm_aot = rt.run_aot()
        assert rt.printed == expected
        assert vm_aot.stats.fuel < vm_interp.stats.fuel / 2

    def test_spec_pointers_patched(self):
        rt = LuaRuntime("print(1 + 1)")
        rt.aot_compile()
        vm = rt.compiler.resume()
        from repro.luavm.runtime import SPEC_FIELD_OFFSET
        for proto in rt.protos:
            spec = vm.load_u64(rt.proto_addrs[proto.index] +
                               SPEC_FIELD_OFFSET)
            assert spec != 0
            assert rt.module.table[spec].startswith("lua$")

    def test_calls_route_through_specialized_code(self):
        rt = LuaRuntime("""
function leaf(x) return x + 1 end
print(leaf(41))
""")
        rt.aot_compile()
        vm = rt.run_aot()
        assert rt.printed == [42]
        assert vm.stats.indirect_calls >= 2  # main + leaf via spec ptrs
