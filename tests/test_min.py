"""Tests for the Min case study (S5)."""

import pytest

from repro.ir.instructions import wrap_i64
from repro.min import (
    PROGRAM_BASE,
    PyMinInterpreter,
    assemble,
    build_min_module,
    run_fig8_configs,
    specialize_min,
    sum_to_n_program,
)
from repro.min.isa import ARITY, MinProgram, Opcode, validate
from repro.vm import VM


class TestAssembler:
    def test_labels_resolve(self):
        program = assemble([
            ("label", "start"),
            ("ADD_IMMEDIATE", -1),
            ("JMPNZ", "start"),
            ("HALT",),
        ])
        assert program.words == [6, wrap_i64(-1), 7, 0, 9]
        assert program.labels == {"start": 0}

    def test_duplicate_label(self):
        with pytest.raises(ValueError, match="duplicate label"):
            assemble([("label", "x"), ("label", "x"), ("HALT",)])

    def test_undefined_label(self):
        with pytest.raises(ValueError, match="undefined label"):
            assemble([("JMP", "nowhere")])

    def test_operand_arity(self):
        with pytest.raises(ValueError, match="expects"):
            assemble([("ADD", 1)])

    def test_validate_accepts_good_program(self):
        validate(sum_to_n_program(5))

    def test_validate_rejects_bad_opcode(self):
        with pytest.raises(ValueError, match="bad opcode"):
            validate(MinProgram([99], {}))

    def test_validate_rejects_bad_register(self):
        with pytest.raises(ValueError, match="bad register"):
            validate(MinProgram([int(Opcode.STORE_REG), 999, 9], {}))

    def test_validate_rejects_misaligned_branch(self):
        # JMP into the middle of a LOAD_IMMEDIATE.
        with pytest.raises(ValueError, match="boundary"):
            validate(MinProgram([int(Opcode.JMP), 3,
                                 int(Opcode.LOAD_IMMEDIATE), 7,
                                 int(Opcode.HALT)], {}))


class TestInterpreterEquivalence:
    @pytest.mark.parametrize("n", [1, 5, 50])
    def test_python_vs_vm_interpreter(self, n):
        program = sum_to_n_program(n)
        expected = PyMinInterpreter(program).run(0)
        module = build_min_module(program)
        vm = VM(module)
        got = vm.call("min_interp", [PROGRAM_BASE, len(program.words), 0])
        assert got == expected == n * (n + 1) // 2

    @pytest.mark.parametrize("use_intrinsics", [False, True])
    def test_specialized_equivalence(self, use_intrinsics):
        program = sum_to_n_program(30)
        module = build_min_module(program)
        func = specialize_min(module, program, use_intrinsics)
        from repro.ir import verify_module
        verify_module(module)
        vm = VM(module)
        got = vm.call(func.name, [PROGRAM_BASE, len(program.words), 0])
        assert got == 30 * 31 // 2

    def test_state_opt_erases_register_traffic(self):
        """The paper's S5 claim: register intrinsics remove the loads and
        stores entirely (the whole loop lives in SSA values)."""
        program = sum_to_n_program(100)
        module = build_min_module(program)
        func = specialize_min(module, program, use_intrinsics=True)
        vm = VM(module)
        vm.call(func.name, [PROGRAM_BASE, len(program.words), 0])
        assert vm.stats.loads == 0
        assert vm.stats.stores == 0

    def test_wrapping_arithmetic_matches(self):
        program = assemble([
            ("LOAD_IMMEDIATE", (1 << 64) - 3),
            ("STORE_REG", 0),
            ("LOAD_REG", 0),
            ("ADD_IMMEDIATE", 10),
            ("HALT",),
        ])
        expected = PyMinInterpreter(program).run(0)
        module = build_min_module(program)
        func = specialize_min(module, program, use_intrinsics=True)
        vm = VM(module)
        got = vm.call(func.name, [PROGRAM_BASE, len(program.words), 0])
        assert got == expected == 7


class TestFig8Harness:
    def test_all_configs_agree(self):
        results = run_fig8_configs(n=50)
        values = {r.result for r in results.values()}
        assert values == {50 * 51 // 2}
        assert set(results) == {"py_interp", "compiled", "vm_interp",
                                "wevaled", "wevaled_state"}

    def test_speedup_ordering(self):
        results = run_fig8_configs(n=300)
        assert results["wevaled"].fuel < results["vm_interp"].fuel
        assert results["wevaled_state"].fuel < results["wevaled"].fuel
