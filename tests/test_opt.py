"""Unit tests for the optimizer passes."""

from repro.frontend import compile_source
from repro.ir import (
    FunctionBuilder,
    I64,
    Module,
    Signature,
    verify_function,
)
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    prune_block_params,
    remove_unreachable_blocks,
    simplify_cfg,
)
from repro.vm import VM


def compiled_func(src, name):
    module = Module(memory_size=4096)
    compile_source(src).add_to_module(module)
    return module, module.functions[name]


class TestFold:
    def test_folds_constant_chain(self):
        module, func = compiled_func(
            "u64 f() { return (2 + 3) * 4 - 1; }", "f")
        folded = fold_constants(func)
        assert folded >= 3
        verify_function(func)
        assert VM(module).call("f", []) == 19

    def test_folds_constant_branch(self):
        module, func = compiled_func(
            "u64 f() { if (1 < 2) { return 10; } return 20; }", "f")
        fold_constants(func)
        remove_unreachable_blocks(func)
        verify_function(func)
        assert VM(module).call("f", []) == 10

    def test_no_fold_of_trapping_ops(self):
        module, func = compiled_func("u64 f() { return 1 / 0; }", "f")
        before = func.num_instrs()
        fold_constants(func)
        assert func.num_instrs() == before  # division by zero left alone


class TestDce:
    def test_removes_unused_pure_ops(self):
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        fb.iadd(x, fb.iconst(1))  # dead
        fb.ret(x)
        func = fb.finish()
        removed = eliminate_dead_code(func)
        assert removed == 2  # the iconst and the iadd
        verify_function(func)

    def test_keeps_effects(self):
        module, func = compiled_func(
            "u64 f() { store64(0, 7); return 1; }", "f")
        eliminate_dead_code(func)
        assert any(i.op == "store64" for b in func.blocks.values()
                   for i in b.instrs)


class TestSimplifyCfg:
    def test_merges_straightline_chains(self):
        module, func = compiled_func("""
u64 f(u64 x) {
  u64 a = x + 1;
  u64 b = a * 2;
  return b - 3;
}
""", "f")
        optimize_function(func)
        verify_function(func)
        assert func.num_blocks() == 1
        assert VM(module).call("f", [10]) == 19

    def test_preserves_semantics_on_loops(self):
        src = """
u64 f(u64 n) {
  u64 acc = 0;
  for (u64 i = 0; i < n; i++) { acc += i * i; }
  return acc;
}
"""
        module, func = compiled_func(src, "f")
        before = VM(module).call("f", [20])
        optimize_function(func)
        verify_function(func)
        module2 = Module(memory_size=4096)
        compile_source(src).add_to_module(module2)
        assert VM(module).call("f", [20]) == before


class TestPruneParams:
    def test_prunes_redundant_loop_params(self):
        # A loop-invariant value passed as a block param on every edge.
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        x, n = [v for v, _ in fb.entry.params]
        header = fb.new_block([I64, I64])  # (i, x_copy) — x_copy redundant
        exit_b = fb.new_block()
        zero = fb.iconst(0)
        fb.jump(header, [zero, x])
        fb.switch_to(header)
        i, x_copy = header.param_values()
        cond = fb.ilt_u(i, n)
        body = fb.new_block()
        fb.br_if(cond, body, exit_b)
        fb.switch_to(body)
        one = fb.iconst(1)
        i2 = fb.iadd(i, one)
        fb.jump(header, [i2, x])  # always passes the same x
        fb.switch_to(exit_b)
        result = fb.iadd(x_copy, n)
        fb.ret(result)
        func = fb.finish()
        removed = prune_block_params(func)
        assert removed == 1
        verify_function(func)
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [7, 3]) == 10

    def test_keeps_genuine_phis(self):
        module, func = compiled_func("""
u64 f(u64 c) {
  u64 r = 0;
  if (c) { r = 1; } else { r = 2; }
  return r;
}
""", "f")
        optimize_function(func)
        verify_function(func)
        assert VM(module).call("f", [1]) == 1
        assert VM(module).call("f", [0]) == 2


class TestPipeline:
    def test_idempotent(self):
        module, func = compiled_func("""
u64 f(u64 n) {
  u64 acc = 0;
  u64 i = 0;
  while (i < n) { acc += i; i++; }
  return acc;
}
""", "f")
        optimize_function(func)
        from repro.ir import print_function
        first = print_function(func, "id")
        optimize_function(func)
        assert print_function(func, "id") == first
