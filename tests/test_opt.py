"""Unit tests for the optimizer passes."""

import pytest

from repro.frontend import compile_source
from repro.ir import (
    BlockCall,
    FunctionBuilder,
    I64,
    Jump,
    Module,
    Signature,
    verify_function,
)
from repro.opt import (
    PIPELINES,
    PassManager,
    available_passes,
    eliminate_dead_code,
    fold_constants,
    forward_loads,
    global_value_numbering,
    optimize_function,
    propagate_copies,
    prune_block_params,
    remove_unreachable_blocks,
    simplify_cfg,
    thread_constant_branches,
)
from repro.vm import VM


def compiled_func(src, name):
    module = Module(memory_size=4096)
    compile_source(src).add_to_module(module)
    return module, module.functions[name]


class TestFold:
    def test_folds_constant_chain(self):
        module, func = compiled_func(
            "u64 f() { return (2 + 3) * 4 - 1; }", "f")
        folded = fold_constants(func)
        assert folded >= 3
        verify_function(func)
        assert VM(module).call("f", []) == 19

    def test_folds_constant_branch(self):
        module, func = compiled_func(
            "u64 f() { if (1 < 2) { return 10; } return 20; }", "f")
        fold_constants(func)
        remove_unreachable_blocks(func)
        verify_function(func)
        assert VM(module).call("f", []) == 10

    def test_no_fold_of_trapping_ops(self):
        module, func = compiled_func("u64 f() { return 1 / 0; }", "f")
        before = func.num_instrs()
        fold_constants(func)
        assert func.num_instrs() == before  # division by zero left alone


class TestDce:
    def test_removes_unused_pure_ops(self):
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        fb.iadd(x, fb.iconst(1))  # dead
        fb.ret(x)
        func = fb.finish()
        removed = eliminate_dead_code(func)
        assert removed == 2  # the iconst and the iadd
        verify_function(func)

    def test_keeps_effects(self):
        module, func = compiled_func(
            "u64 f() { store64(0, 7); return 1; }", "f")
        eliminate_dead_code(func)
        assert any(i.op == "store64" for b in func.blocks.values()
                   for i in b.instrs)


class TestSimplifyCfg:
    def test_merges_straightline_chains(self):
        module, func = compiled_func("""
u64 f(u64 x) {
  u64 a = x + 1;
  u64 b = a * 2;
  return b - 3;
}
""", "f")
        optimize_function(func)
        verify_function(func)
        assert func.num_blocks() == 1
        assert VM(module).call("f", [10]) == 19

    def test_preserves_semantics_on_loops(self):
        src = """
u64 f(u64 n) {
  u64 acc = 0;
  for (u64 i = 0; i < n; i++) { acc += i * i; }
  return acc;
}
"""
        module, func = compiled_func(src, "f")
        before = VM(module).call("f", [20])
        optimize_function(func)
        verify_function(func)
        module2 = Module(memory_size=4096)
        compile_source(src).add_to_module(module2)
        assert VM(module).call("f", [20]) == before


class TestPruneParams:
    def test_prunes_redundant_loop_params(self):
        # A loop-invariant value passed as a block param on every edge.
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        x, n = [v for v, _ in fb.entry.params]
        header = fb.new_block([I64, I64])  # (i, x_copy) — x_copy redundant
        exit_b = fb.new_block()
        zero = fb.iconst(0)
        fb.jump(header, [zero, x])
        fb.switch_to(header)
        i, x_copy = header.param_values()
        cond = fb.ilt_u(i, n)
        body = fb.new_block()
        fb.br_if(cond, body, exit_b)
        fb.switch_to(body)
        one = fb.iconst(1)
        i2 = fb.iadd(i, one)
        fb.jump(header, [i2, x])  # always passes the same x
        fb.switch_to(exit_b)
        result = fb.iadd(x_copy, n)
        fb.ret(result)
        func = fb.finish()
        removed = prune_block_params(func)
        assert removed == 1
        verify_function(func)
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [7, 3]) == 10

    def test_keeps_genuine_phis(self):
        module, func = compiled_func("""
u64 f(u64 c) {
  u64 r = 0;
  if (c) { r = 1; } else { r = 2; }
  return r;
}
""", "f")
        optimize_function(func)
        verify_function(func)
        assert VM(module).call("f", [1]) == 1
        assert VM(module).call("f", [0]) == 2


class TestGvn:
    def test_cse_within_block(self):
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        x, y = [v for v, _ in fb.entry.params]
        a = fb.iadd(x, y)
        b = fb.iadd(x, y)  # redundant
        fb.ret(fb.imul(a, b))
        func = fb.finish()
        removed = global_value_numbering(func)
        assert removed == 1
        verify_function(func)
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [3, 4]) == 49

    def test_commutative_operands_unify(self):
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        x, y = [v for v, _ in fb.entry.params]
        a = fb.iadd(x, y)
        b = fb.iadd(y, x)  # same value, swapped operands
        fb.ret(fb.isub(a, b))
        func = fb.finish()
        assert global_value_numbering(func) == 1
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [11, 31]) == 0

    def test_noncommutative_not_unified(self):
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        x, y = [v for v, _ in fb.entry.params]
        a = fb.isub(x, y)
        b = fb.isub(y, x)
        fb.ret(fb.ixor(a, b))
        func = fb.finish()
        assert global_value_numbering(func) == 0

    def test_dominating_def_reused_across_blocks(self):
        module, func = compiled_func("""
u64 f(u64 x) {
  u64 a = x * 3;
  if (x) { return x * 3 + 1; }
  return a;
}
""", "f")
        before = VM(module).call("f", [5])
        removed = global_value_numbering(func)
        assert removed >= 1
        verify_function(func)
        assert VM(module).call("f", [5]) == before

    def test_sibling_branches_not_unified(self):
        # The same expression in two sibling arms must NOT be unified:
        # neither def dominates the other.
        module, func = compiled_func("""
u64 f(u64 x) {
  u64 r = 0;
  if (x) { r = x + 7; } else { r = x + 7; }
  return r;
}
""", "f")
        global_value_numbering(func)
        verify_function(func)
        assert VM(module).call("f", [1]) == 8
        assert VM(module).call("f", [0]) == 7

    def test_loads_never_cse(self):
        # Loads are impure (stores may intervene): GVN must leave them.
        module, func = compiled_func("""
u64 f(u64 p) {
  u64 a = load64(p);
  store64(p, a + 1);
  return a + load64(p);
}
""", "f")
        assert global_value_numbering(func) == 0


class TestCopyProp:
    def test_add_zero_chain(self):
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        zero = fb.iconst(0)
        a = fb.iadd(x, zero)
        b = fb.iadd(zero, a)
        c = fb.isub(b, zero)
        fb.ret(c)
        func = fb.finish()
        removed = propagate_copies(func)
        assert removed == 3
        eliminate_dead_code(func)
        verify_function(func)
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [42]) == 42
        assert func.num_instrs() == 0  # everything folded to `ret x`

    def test_mul_one_and_select_same(self):
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        x, c = [v for v, _ in fb.entry.params]
        one = fb.iconst(1)
        m = fb.imul(one, x)
        s = fb.select(c, m, m)
        fb.ret(s)
        func = fb.finish()
        assert propagate_copies(func) == 2
        verify_function(func)
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [9, 0]) == 9

    def test_select_constant_condition(self):
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        a, b = [v for v, _ in fb.entry.params]
        cond = fb.iconst(0)
        s = fb.select(cond, a, b)
        fb.ret(s)
        func = fb.finish()
        assert propagate_copies(func) == 1
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [5, 6]) == 6

    def test_negation_is_not_a_copy(self):
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        zero = fb.iconst(0)
        neg = fb.isub(zero, x)  # 0 - x is NOT x
        fb.ret(neg)
        func = fb.finish()
        assert propagate_copies(func) == 0
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [1]) == (1 << 64) - 1


class TestLoadForward:
    def test_load_load_same_block(self):
        module, func = compiled_func("""
u64 f(u64 p) {
  return load64(p) + load64(p);
}
""", "f")
        def load_count():
            return sum(1 for b in func.blocks.values() for i in b.instrs
                       if i.op == "load64")

        assert load_count() == 2
        removed = forward_loads(func)
        assert removed == 1
        verify_function(func)
        assert load_count() == 1

    def test_store_kills_unless_disjoint(self):
        # Store to p+8 cannot alias a load from p (same base, disjoint
        # ranges): the reload of p is forwarded across it.
        module, func = compiled_func("""
u64 f(u64 p) {
  u64 a = load64(p);
  store64(p + 8, 5);
  return a + load64(p);
}
""", "f")
        optimize_function(func, config="none")  # merge blocks only
        assert forward_loads(func) == 1
        verify_function(func)

    def test_store_to_unknown_base_kills(self):
        module, func = compiled_func("""
u64 f(u64 p, u64 q) {
  u64 a = load64(p);
  store64(q, 5);
  return a + load64(p);
}
""", "f")
        optimize_function(func, config="none")
        assert forward_loads(func) == 0  # q may alias p

    def test_store_to_load_forwarding(self):
        module, func = compiled_func("""
u64 f(u64 p, u64 v) {
  store64(p, v);
  return load64(p);
}
""", "f")
        optimize_function(func, config="none")
        assert forward_loads(func) == 1
        verify_function(func)
        module2, _ = compiled_func("""
u64 f(u64 p, u64 v) {
  store64(p, v);
  return load64(p);
}
""", "f")
        assert (VM(module).call("f", [64, 77]) ==
                VM(module2).call("f", [64, 77]) == 77)

    def test_call_kills_everything(self):
        module, func = compiled_func("""
u64 g(u64 p) { store64(p, 9); return 0; }
u64 f(u64 p) {
  u64 a = load64(p);
  u64 x = g(p);
  return a + x + load64(p);
}
""", "f")
        optimize_function(func, config="none")
        assert forward_loads(func) == 0

    def test_forwarding_across_blocks(self):
        module, func = compiled_func("""
u64 f(u64 p, u64 c) {
  u64 a = load64(p);
  u64 r = 0;
  if (c) { r = a + 1; } else { r = a + 2; }
  return r + load64(p);
}
""", "f")
        before1 = VM(module).call("f", [128, 1])
        # Canonicalize the join block's re-passed address parameter
        # first (the pipeline's fixpoint interleaving does this).
        prune_block_params(func)
        removed = forward_loads(func)
        assert removed == 1  # the reload after the join
        verify_function(func)
        assert VM(module).call("f", [128, 1]) == before1

    def test_loop_carried_load_forwarded(self):
        # A loop-invariant reload must be forwarded to the dominating
        # pre-loop load: the availability fact has to survive the back
        # edge (the first definition wins, not the latest).
        module, func = compiled_func("""
u64 f(u64 p, u64 n) {
  u64 a = load64(p);
  u64 s = a;
  for (u64 i = 0; i < n; i++) { s = s + load64(p); }
  return s;
}
""", "f")
        expected = VM(module).call("f", [256, 4])
        prune_block_params(func)
        removed = forward_loads(func)
        assert removed == 1  # the in-loop reload
        verify_function(func)
        assert VM(module).call("f", [256, 4]) == expected

    def test_loop_with_store_not_forwarded(self):
        # If the loop body may store to the address, the reload stays.
        module, func = compiled_func("""
u64 f(u64 p, u64 n) {
  u64 s = load64(p);
  for (u64 i = 0; i < n; i++) {
    store64(p, s + i);
    s = s + load64(p);
  }
  return s;
}
""", "f")
        expected = VM(module).call("f", [256, 4])
        prune_block_params(func)
        # The in-loop load after the store forwards store-to-load
        # locally, but the header-crossing fact must not leak the
        # pre-loop value past the store.
        forward_loads(func)
        verify_function(func)
        assert VM(module).call("f", [256, 4]) == expected

    def test_sub_word_store_not_forwarded(self):
        # store8 truncates: its operand is not what load8_u returns, so
        # store-to-load forwarding must not apply to sub-word stores.
        fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
        p, v = [value for value, _ in fb.entry.params]
        fb.emit("store8", (p, v), imm=0)
        loaded = fb.emit("load8_u", (p,), imm=0, result_type=I64)
        fb.ret(loaded)
        func = fb.finish()
        assert forward_loads(func) == 0
        module = Module(memory_size=4096)
        module.add_function(func)
        assert VM(module).call("f", [64, 0x1FF]) == 0xFF


class TestJumpThreading:
    def _build_const_forwarder(self):
        """entry passes a constant into a forwarder whose br_if decides
        on that parameter; another pred passes a runtime value."""
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        fwd = fb.new_block([I64])
        t_blk, f_blk, other = fb.new_block(), fb.new_block(), fb.new_block()
        one = fb.iconst(1)
        fb.br_if(x, other, fwd, [], [one])
        fb.switch_to(fwd)
        cond = fwd.param_values()[0]
        fb.br_if(cond, t_blk, f_blk)
        fb.switch_to(t_blk)
        fb.ret(fb.iconst(10))
        fb.switch_to(f_blk)
        fb.ret(fb.iconst(20))
        fb.switch_to(other)
        fb.jump(fwd, [x])
        return fb.finish()

    def test_threads_constant_edge(self):
        func = self._build_const_forwarder()
        threaded = thread_constant_branches(func)
        assert threaded == 1
        verify_function(func)
        entry_term = func.entry_block().terminator
        # The constant edge now bypasses the forwarder entirely.
        targets = [c.block for c in entry_term.targets()]
        assert func.blocks and all(t in func.blocks for t in targets)
        module = Module(memory_size=64)
        module.add_function(func)
        assert VM(module).call("f", [0]) == 10  # const edge: cond=1
        assert VM(module).call("f", [5]) == 10  # runtime edge: cond=5

    def test_uniform_brif_folds(self):
        module, func = compiled_func("""
u64 f(u64 c) {
  u64 r = 0;
  if (c) { r = 1; } else { r = 1; }
  return r;
}
""", "f")
        optimize_function(func)
        verify_function(func)
        assert func.num_blocks() == 1  # fully linearized
        assert VM(module).call("f", [0]) == 1
        assert VM(module).call("f", [3]) == 1


class TestPassManager:
    def test_registry_covers_roster(self):
        for name in ("fold", "copyprop", "gvn", "load-forward",
                     "prune-params", "simplify-cfg", "dce"):
            assert name in available_passes()
        for pipeline in PIPELINES.values():
            for name in pipeline:
                assert name in available_passes()

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(KeyError, match="unknown pipeline"):
            PassManager("turbo")
        with pytest.raises(KeyError, match="unknown pass"):
            PassManager(["not-a-pass"])

    def test_stats_collected_per_pass(self):
        module, func = compiled_func(
            "u64 f() { return (2 + 3) * 4 - 1; }", "f")
        manager = PassManager("default")
        stats = manager.run(func, module)
        assert stats.runs == 1
        assert stats.instrs_after < stats.instrs_before
        assert stats.per_pass["fold"].changes >= 3
        assert stats.per_pass["fold"].seconds >= 0.0
        assert stats.rounds >= 2  # at least one round plus the clean one

    def test_shared_stats_accumulate(self):
        from repro.core.stats import PipelineStats
        shared = PipelineStats()
        for _ in range(3):
            module, func = compiled_func(
                "u64 f(u64 x) { return x + 0 + 0; }", "f")
            optimize_function(func, stats=shared)
        assert shared.runs == 3

    def test_legacy_matches_seed_behavior(self):
        # The legacy pipeline must keep producing valid, working code.
        src = """
u64 f(u64 n) {
  u64 acc = 0;
  for (u64 i = 0; i < n; i++) { acc += i * 3; }
  return acc;
}
"""
        module, func = compiled_func(src, "f")
        expected = VM(module).call("f", [10])
        module2, func2 = compiled_func(src, "f")
        optimize_function(func2, config="legacy")
        verify_function(func2)
        assert VM(module2).call("f", [10]) == expected

    def test_default_pipeline_not_weaker_than_legacy(self):
        src = """
u64 f(u64 p) {
  u64 s = 0;
  for (u64 i = 0; i < 8; i++) {
    store64(p + i * 8, i);
    s = s + load64(p + i * 8);
  }
  return s;
}
"""
        module_a, func_a = compiled_func(src, "f")
        module_b, func_b = compiled_func(src, "f")
        optimize_function(func_a, config="legacy")
        optimize_function(func_b, config="default")
        verify_function(func_b)
        assert func_b.num_instrs() <= func_a.num_instrs()
        assert (VM(module_a).call("f", [256]) ==
                VM(module_b).call("f", [256]) == 28)


class TestPipeline:
    def test_idempotent(self):
        module, func = compiled_func("""
u64 f(u64 n) {
  u64 acc = 0;
  u64 i = 0;
  while (i < n) { acc += i; i++; }
  return acc;
}
""", "f")
        optimize_function(func)
        from repro.ir import print_function
        first = print_function(func, "id")
        optimize_function(func)
        assert print_function(func, "id") == first
