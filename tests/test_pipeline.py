"""Tests for the compilation pipeline: the CompilationEngine, the
on-disk artifact store, and parallel-batch determinism.

The contracts under test (ISSUE/ROADMAP "production story" layer):

* **Warm-start proof** — a second engine run over the same module and
  requests specializes *zero* functions: every residual loads from
  disk, its printed IR is byte-identical to the cold compile's, and the
  resumed snapshot runs with identical results and identical
  deterministic fuel.
* **Corruption safety** — truncated/garbage artifacts, version skew,
  and fingerprint mismatches are silently treated as misses (fresh
  recompile), never crashes.
* **Parallel determinism** — ``jobs=1`` and ``jobs=4`` produce
  byte-identical residual IR, byte-identical emitted backend source,
  and the same table/heap patching.
"""

import dataclasses
import json
import os

import pytest

from repro.core import (
    Runtime,
    SnapshotCompiler,
    SpecializationCache,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
)
from repro.core.specialize import SpecializeOptions
from repro.frontend import compile_source
from repro.ir import Module, print_function, verify_module
from repro.pipeline import (
    ARTIFACT_VERSION,
    ArtifactStore,
    CompilationEngine,
    SerializationError,
    function_from_dict,
    function_to_dict,
    locked_write_json,
    module_from_dict,
    module_to_dict,
    request_from_dict,
    request_to_dict,
)

INTERP = """
u64 interp(u64 program, u64 proglen, u64 input) {
  u64 pc = 0;
  u64 acc = input;
  weval_push_context(pc);
  while (1) {
    u64 op = load64(program + pc * 8);
    pc = pc + 1;
    switch (op) {
    case 0: { acc = acc + load64(program + pc * 8); pc = pc + 1; break; }
    case 1: { acc = acc * load64(program + pc * 8); pc = pc + 1; break; }
    case 2: { return acc; }
    default: { abort(); }
    }
    weval_update_context(pc);
  }
  return 0;
}

u64 dispatch(u64 fnptr_addr, u64 program, u64 proglen, u64 input) {
  u64 spec = load64(fnptr_addr);
  if (spec != 0) {
    return icall3(spec, program, proglen, input);
  }
  return interp(program, proglen, input);
}
"""

BASE_A = 0x800
BASE_B = 0x900
FNPTR_A = 0x100
FNPTR_B = 0x108

CODE_A = [0, 5, 1, 3, 2]   # (x + 5) * 3
CODE_B = [1, 7, 0, 2, 2]   # x * 7 + 2


def build_module() -> Module:
    module = Module(memory_size=1 << 14)
    compile_source(INTERP).add_to_module(module)
    for base, code in ((BASE_A, CODE_A), (BASE_B, CODE_B)):
        for i, word in enumerate(code):
            module.write_init_u64(base + i * 8, word)
    return module


def make_requests():
    return [
        SpecializationRequest(
            "interp",
            [SpecializedMemory(BASE_A, len(CODE_A) * 8),
             SpecializedConst(len(CODE_A)), Runtime()],
            specialized_name="spec_a"),
        SpecializationRequest(
            "interp",
            [SpecializedMemory(BASE_B, len(CODE_B) * 8),
             SpecializedConst(len(CODE_B)), Runtime()],
            specialized_name="spec_b"),
    ]


def run_snapshot(options: SpecializeOptions, cache=None):
    """One full cold-or-warm AOT flow; returns (compiler, outputs)
    where outputs maps function name -> (result, fuel, ir_text)."""
    module = build_module()
    compiler = SnapshotCompiler(module, options, cache)
    compiler.instantiate()
    for request, fnptr in zip(make_requests(), (FNPTR_A, FNPTR_B)):
        compiler.enqueue(request, fnptr)
    compiler.process_requests()
    compiler.freeze()
    verify_module(module)
    outputs = {}
    for processed, (base, code, arg) in zip(
            compiler.processed,
            ((BASE_A, CODE_A, 10), (BASE_B, CODE_B, 10))):
        vm = compiler.resume()
        fnptr = processed.result_addr
        result = vm.call("dispatch", [fnptr, base, len(code), arg])
        outputs[processed.function_name] = (
            result, vm.stats.fuel,
            print_function(module.functions[processed.function_name],
                           order="id"))
    return compiler, outputs


EXPECTED = {"spec_a": (10 + 5) * 3, "spec_b": 10 * 7 + 2}


def check_outputs(outputs):
    for name, (result, _fuel, _ir) in outputs.items():
        assert result == EXPECTED[name]


# ---------------------------------------------------------------------------
# Serialization round trip.
# ---------------------------------------------------------------------------
class TestSerialization:
    def test_round_trip_is_identical(self):
        module = build_module()
        engine = CompilationEngine(module)
        func = engine.compile_batch(make_requests()[:1])[0].function
        payload = json.loads(json.dumps(function_to_dict(func)))
        clone = function_from_dict(payload)
        assert print_function(clone, order="id") == \
            print_function(func, order="id")
        assert clone._next_value == func._next_value
        assert clone._next_block == func._next_block

    def test_rename_on_load(self):
        module = build_module()
        engine = CompilationEngine(module)
        func = engine.compile_batch(make_requests()[:1])[0].function
        clone = function_from_dict(function_to_dict(func), name="renamed")
        assert clone.name == "renamed"

    @pytest.mark.parametrize("mutilate", [
        lambda d: d.pop("blocks"),
        lambda d: d["blocks"][0].update(terminator={"t": "mystery"}),
        lambda d: d["sig"].update(params=["i32"]),
        lambda d: d.update(entry=999),
        lambda d: d["blocks"][0]["instrs"].append(["iconst"]),
    ])
    def test_malformed_payload_raises(self, mutilate):
        module = build_module()
        engine = CompilationEngine(module)
        func = engine.compile_batch(make_requests()[:1])[0].function
        payload = function_to_dict(func)
        mutilate(payload)
        with pytest.raises(SerializationError):
            function_from_dict(payload)

    def test_duplicate_block_id_rejected(self):
        """Duplicate block ids must read as corruption, not silently
        last-write-wins into a different program."""
        module = build_module()
        engine = CompilationEngine(module)
        func = engine.compile_batch(make_requests()[:1])[0].function
        payload = function_to_dict(func)
        payload["blocks"].append(dict(payload["blocks"][0]))
        with pytest.raises(SerializationError, match="duplicate block"):
            function_from_dict(payload)


class TestRequestSerialization:
    def _request(self):
        from repro.core import SpeculatedConst
        return SpecializationRequest(
            "interp",
            [SpecializedMemory(BASE_A, len(CODE_A) * 8),
             SpecializedConst(len(CODE_A)), Runtime(), SpeculatedConst(9)],
            specialized_name="spec_rt",
            extra_const_memory=[(0x40, 16)])

    def test_round_trip_preserves_identity(self):
        request = self._request()
        clone = request_from_dict(
            json.loads(json.dumps(request_to_dict(request))))
        assert clone == request
        assert clone.cache_key() == request.cache_key()
        assert clone.name() == request.name()

    def test_default_name_round_trips(self):
        request = dataclasses.replace(self._request(),
                                      specialized_name=None)
        clone = request_from_dict(request_to_dict(request))
        assert clone.specialized_name is None
        assert clone.name() == request.name()

    @pytest.mark.parametrize("mutilate", [
        lambda d: d.pop("args"),
        lambda d: d["args"][0].update(t="mystery"),
        lambda d: d["args"][1].update(value="NaN-ish"),
        lambda d: d.update(extra_const_memory=[["x"]]),
    ])
    def test_malformed_request_raises(self, mutilate):
        payload = request_to_dict(self._request())
        mutilate(payload)
        with pytest.raises(SerializationError):
            request_from_dict(payload)


class TestModuleSerialization:
    def _module(self):
        from repro.core import register_weval_imports
        module = build_module()
        register_weval_imports(module)
        module.add_global("g0", 7)
        module.add_table_entry("interp")
        return module

    def test_round_trip_preserves_compile_surface(self):
        module = self._module()
        clone = module_from_dict(
            json.loads(json.dumps(module_to_dict(module))))
        assert set(clone.functions) == set(module.functions)
        for name, func in module.functions.items():
            assert print_function(clone.functions[name], order="id") == \
                print_function(func, order="id")
        assert list(clone.imports) == list(module.imports)
        for name, host in module.imports.items():
            assert clone.imports[name].sig == host.sig
        assert clone.table == module.table
        assert clone.globals == module.globals
        assert clone.memory_size == module.memory_size

    def test_duplicate_function_name_rejected(self):
        payload = module_to_dict(self._module())
        payload["functions"].append(payload["functions"][0])
        with pytest.raises(SerializationError, match="duplicate"):
            module_from_dict(payload)

    def test_duplicate_import_name_rejected(self):
        payload = module_to_dict(self._module())
        payload["imports"].append(payload["imports"][0])
        with pytest.raises(SerializationError, match="duplicate"):
            module_from_dict(payload)

    def test_unknown_table_entry_rejected(self):
        payload = module_to_dict(self._module())
        payload["table"].append("no_such_function")
        with pytest.raises(SerializationError):
            module_from_dict(payload)

    def test_deserialized_imports_refuse_to_run(self):
        clone = module_from_dict(module_to_dict(self._module()))
        from repro.vm import VM
        vm = VM(clone)
        host = next(iter(clone.imports.values()))
        with pytest.raises(RuntimeError, match="not available"):
            host.fn(vm)


# ---------------------------------------------------------------------------
# Warm start.
# ---------------------------------------------------------------------------
class TestWarmStart:
    def test_second_run_compiles_zero_functions(self, tmp_path):
        options = SpecializeOptions(cache_dir=str(tmp_path))
        cold, cold_out = run_snapshot(options)
        assert cold.engine.stats.functions_specialized == 2
        assert cold.engine.stats.artifacts_written == 2
        check_outputs(cold_out)

        warm, warm_out = run_snapshot(options)
        assert warm.engine.stats.functions_specialized == 0
        assert warm.engine.stats.artifact_hits == 2
        check_outputs(warm_out)
        # Byte-identical residual IR print, identical deterministic fuel.
        assert warm_out == cold_out
        assert all(p.artifact_hit for p in warm.processed)

    def test_warm_py_backend_reuses_source_and_fuel(self, tmp_path):
        options = SpecializeOptions(cache_dir=str(tmp_path), backend="py")
        cold, cold_out = run_snapshot(options)
        assert cold.engine.stats.backend_emitted == 2
        check_outputs(cold_out)
        warm, warm_out = run_snapshot(options)
        assert warm.engine.stats.functions_specialized == 0
        assert warm.engine.stats.backend_emitted == 0
        assert warm.engine.stats.backend_source_hits == 2
        assert warm_out == cold_out  # results, fuel, and IR all identical
        assert set(warm.backend_functions) == {"spec_a", "spec_b"}

    def test_vm_and_py_artifact_spaces_are_disjoint(self, tmp_path):
        """backend is part of the key: a vm-compiled store does not
        satisfy a py-backend run (and vice versa)."""
        run_snapshot(SpecializeOptions(cache_dir=str(tmp_path),
                                       backend="vm"))
        warm, _ = run_snapshot(SpecializeOptions(cache_dir=str(tmp_path),
                                                 backend="py"))
        assert warm.engine.stats.functions_specialized == 2

    def test_js_runtime_warm_start(self, tmp_path):
        """End-to-end through JSRuntime: the residuals contain
        ``call_indirect`` (Signature immediates) and IC-corpus stubs, so
        this exercises the full serialization surface."""
        from repro.jsvm import JSRuntime
        src = ("function compute() { var o = {}; o.x = 3; o.y = 4;\n"
               "  return o.x * o.y; }\n"
               "print(compute());")
        options = SpecializeOptions(cache_dir=str(tmp_path))
        cold = JSRuntime(src, "wevaled_state", options=options)
        vm_cold = cold.run()
        assert cold.compiler.engine.stats.functions_specialized > 0
        warm = JSRuntime(src, "wevaled_state", options=options)
        vm_warm = warm.run()
        assert warm.compiler.engine.stats.functions_specialized == 0
        assert warm.printed == cold.printed == ["12"]
        assert vm_warm.stats.fuel == vm_cold.stats.fuel
        for p_cold, p_warm in zip(cold.compiler.processed,
                                  warm.compiler.processed):
            assert print_function(
                cold.module.functions[p_cold.function_name],
                order="id") == print_function(
                warm.module.functions[p_warm.function_name], order="id")

    def test_memory_change_invalidates(self, tmp_path):
        options = SpecializeOptions(cache_dir=str(tmp_path))
        run_snapshot(options)

        module = build_module()
        module.write_init_u64(BASE_A + 8, 6)  # ADDI 6 instead of 5
        compiler = SnapshotCompiler(module, options)
        compiler.instantiate()
        for request, fnptr in zip(make_requests(), (FNPTR_A, FNPTR_B)):
            compiler.enqueue(request, fnptr)
        compiler.process_requests()
        # spec_a's promised-constant bytes changed -> fresh compile;
        # spec_b still loads from disk.
        assert compiler.engine.stats.functions_specialized == 1
        assert compiler.engine.stats.artifact_hits == 1


# ---------------------------------------------------------------------------
# Corruption, truncation, version skew.
# ---------------------------------------------------------------------------
def _spec_files(tmp_path):
    spec_dir = os.path.join(str(tmp_path), "spec")
    return [os.path.join(spec_dir, f) for f in sorted(os.listdir(spec_dir))]


class TestArtifactRobustness:
    def _warm_after(self, tmp_path, damage):
        options = SpecializeOptions(cache_dir=str(tmp_path))
        run_snapshot(options)
        for path in _spec_files(tmp_path):
            damage(path)
        warm, outputs = run_snapshot(options)
        check_outputs(outputs)
        return warm

    def test_truncated_artifact_recompiles(self, tmp_path):
        def damage(path):
            with open(path, "r+b") as handle:
                handle.truncate(os.path.getsize(path) // 2)
        warm = self._warm_after(tmp_path, damage)
        assert warm.engine.stats.functions_specialized == 2
        assert warm.engine.stats.artifact_invalid == 2

    def test_garbage_artifact_recompiles(self, tmp_path):
        def damage(path):
            with open(path, "wb") as handle:
                handle.write(b"\x00\xffnot json at all")
        warm = self._warm_after(tmp_path, damage)
        assert warm.engine.stats.functions_specialized == 2
        assert warm.engine.stats.artifact_invalid == 2

    def test_version_mismatch_recompiles(self, tmp_path):
        def damage(path):
            with open(path) as handle:
                data = json.load(handle)
            data["version"] = ARTIFACT_VERSION + 1
            with open(path, "w") as handle:
                json.dump(data, handle)
        warm = self._warm_after(tmp_path, damage)
        assert warm.engine.stats.functions_specialized == 2
        assert warm.engine.stats.artifact_invalid == 2

    def test_fingerprint_mismatch_recompiles(self, tmp_path):
        def damage(path):
            with open(path) as handle:
                data = json.load(handle)
            data["memory_fingerprint"] = "0" * 64
            with open(path, "w") as handle:
                json.dump(data, handle)
        warm = self._warm_after(tmp_path, damage)
        assert warm.engine.stats.functions_specialized == 2
        assert warm.engine.stats.artifact_invalid == 2

    def test_mangled_ir_payload_recompiles(self, tmp_path):
        def damage(path):
            with open(path) as handle:
                data = json.load(handle)
            data["ir"]["blocks"][0]["terminator"] = {"t": "mystery"}
            with open(path, "w") as handle:
                json.dump(data, handle)
        warm = self._warm_after(tmp_path, damage)
        assert warm.engine.stats.functions_specialized == 2
        assert warm.engine.stats.artifact_invalid == 2

    def test_semantically_invalid_ir_recompiles(self, tmp_path):
        """A parseable artifact whose function fails the verifier is
        rejected like corruption (artifacts sit outside the trust
        boundary)."""
        def damage(path):
            with open(path) as handle:
                data = json.load(handle)
            # Use-before-def: clobber every instruction's args.
            for block in data["ir"]["blocks"]:
                for instr in block["instrs"]:
                    instr[2] = [999999 for _ in instr[2]]
            with open(path, "w") as handle:
                json.dump(data, handle)
        warm = self._warm_after(tmp_path, damage)
        assert warm.engine.stats.functions_specialized == 2
        assert warm.engine.stats.artifact_invalid == 2

    def test_store_statuses(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        func, status = store.load_residual(("nope",), "f", "g", "m")
        assert func is None and status == "miss"
        source, status = store.load_py_source("0" * 64)
        assert source is None and status == "miss"


# ---------------------------------------------------------------------------
# Parallel batch compilation.
# ---------------------------------------------------------------------------
class TestParallelDeterminism:
    def test_jobs_1_vs_4_identical_outputs(self, tmp_path):
        runs = {}
        for jobs in (1, 4):
            options = SpecializeOptions(backend="py", jobs=jobs)
            module = build_module()
            compiler = SnapshotCompiler(module, options)
            compiler.instantiate()
            for request, fnptr in zip(make_requests(), (FNPTR_A, FNPTR_B)):
                compiler.enqueue(request, fnptr)
            processed = compiler.process_requests()
            compiler.freeze()
            vm = compiler.resume()
            results = [vm.call("dispatch", [fnptr, base, len(code), 9])
                       for fnptr, base, code in
                       ((FNPTR_A, BASE_A, CODE_A), (FNPTR_B, BASE_B, CODE_B))]
            runs[jobs] = {
                "names": [p.function_name for p in processed],
                "tables": [p.table_index for p in processed],
                "ir": [print_function(module.functions[p.function_name],
                                      order="id") for p in processed],
                "results": results,
                "fuel": vm.stats.fuel,
            }
        assert runs[1] == runs[4]

    def test_jobs_populate_identical_artifacts(self, tmp_path):
        contents = {}
        for jobs in (1, 4):
            cache_dir = tmp_path / f"jobs{jobs}"
            run_snapshot(SpecializeOptions(jobs=jobs, backend="py",
                                           cache_dir=str(cache_dir)))
            files = {}
            for sub in ("spec", "py"):
                subdir = cache_dir / sub
                for entry in sorted(os.listdir(subdir)):
                    files[f"{sub}/{entry}"] = (subdir / entry).read_bytes()
            contents[jobs] = files
        assert contents[1] == contents[4]

    def test_process_pool_matches_thread_pool(self, tmp_path):
        """``pool="process"`` must leave byte-identical artifacts and
        produce identical outputs at any worker count (the fleet's
        scale-out correctness contract)."""
        contents = {}
        outputs_by_config = {}
        for pool, jobs in (("thread", 1), ("process", 2), ("process", 4)):
            cache_dir = tmp_path / f"{pool}-{jobs}"
            _, outputs = run_snapshot(
                SpecializeOptions(jobs=jobs, pool=pool, backend="py",
                                  cache_dir=str(cache_dir)))
            check_outputs(outputs)
            outputs_by_config[(pool, jobs)] = outputs
            files = {}
            for sub in ("spec", "py"):
                subdir = cache_dir / sub
                for entry in sorted(os.listdir(subdir)):
                    files[f"{sub}/{entry}"] = (subdir / entry).read_bytes()
            contents[(pool, jobs)] = files
        assert contents[("thread", 1)] == contents[("process", 2)] \
            == contents[("process", 4)]
        assert outputs_by_config[("thread", 1)] \
            == outputs_by_config[("process", 2)] \
            == outputs_by_config[("process", 4)]

    def test_process_pool_warm_starts_from_store(self, tmp_path):
        """Process-pool workers read the shared store: a warm second run
        specializes zero functions in any pool flavor."""
        options = SpecializeOptions(jobs=2, pool="process", backend="py",
                                    cache_dir=str(tmp_path))
        cold, _ = run_snapshot(options)
        assert cold.engine.stats.functions_specialized == 2
        warm, outputs = run_snapshot(options)
        check_outputs(outputs)
        assert warm.engine.stats.functions_specialized == 0
        assert warm.engine.stats.artifact_hits == 2

    def test_bad_pool_option_rejected(self):
        with pytest.raises(ValueError, match="bad pool"):
            SpecializeOptions(pool="fibers")

    def test_duplicate_requests_share_one_compile(self):
        module = build_module()
        cache = SpecializationCache()
        engine = CompilationEngine(module, SpecializeOptions(),
                                   cache=cache)
        request = make_requests()[0]
        twin = dataclasses.replace(request, specialized_name="spec_twin")
        results = engine.compile_batch([request, twin])
        assert engine.stats.functions_specialized == 1
        assert results[1].cache_hit
        assert results[0].function.name == "spec_a"
        assert results[1].function.name == "spec_twin"
        assert cache.hits == 1 and cache.misses == 1


# ---------------------------------------------------------------------------
# Engine surface details.
# ---------------------------------------------------------------------------
class TestEngineSurface:
    def test_memory_cache_layer_over_store(self, tmp_path):
        """Requests resolve memory-cache first; the disk store fills the
        memory cache so a later batch in the same process hits RAM."""
        options = SpecializeOptions(cache_dir=str(tmp_path))
        run_snapshot(options)  # populate disk
        cache = SpecializationCache()
        module = build_module()
        engine = CompilationEngine(module, options, cache=cache)
        first = engine.compile_batch(make_requests())
        assert all(r.artifact_hit for r in first)
        again = engine.compile_batch([
            dataclasses.replace(r, specialized_name=r.specialized_name
                                + ".2") for r in make_requests()])
        assert all(r.cache_hit for r in again)
        assert engine.stats.cache_hits == 2

    def test_uncreatable_cache_dir_degrades_to_no_cache(self, tmp_path):
        """A cache_dir that cannot be created (path collides with a
        file) degrades to 'no cache', never a failed build."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        options = SpecializeOptions(
            cache_dir=str(blocker / "cache"))
        engine = CompilationEngine(build_module(), options)
        assert engine.store is None
        results = engine.compile_batch(make_requests())
        assert engine.stats.functions_specialized == 2
        assert [r.function.name for r in results] == ["spec_a", "spec_b"]

    def test_memory_cache_hits_backfill_the_store(self, tmp_path):
        """A warm in-memory cache combined with a fresh cache_dir must
        still leave a complete on-disk store behind."""
        cache = SpecializationCache()
        module = build_module()
        warm_engine = CompilationEngine(module, SpecializeOptions(),
                                        cache=cache)
        warm_engine.compile_batch(make_requests())  # warm the RAM cache

        options = SpecializeOptions(cache_dir=str(tmp_path))
        disk_engine = CompilationEngine(build_module(), options,
                                        cache=cache)
        results = disk_engine.compile_batch(make_requests())
        assert all(r.cache_hit for r in results)
        assert disk_engine.stats.artifacts_written == 2
        # A fresh process (no RAM cache) now warm-starts from disk.
        fresh = CompilationEngine(build_module(), options)
        fresh_results = fresh.compile_batch(make_requests())
        assert fresh.stats.functions_specialized == 0
        assert all(r.artifact_hit for r in fresh_results)

    def test_engine_results_in_request_order(self):
        module = build_module()
        engine = CompilationEngine(module, SpecializeOptions(jobs=4))
        requests = make_requests()
        results = engine.compile_batch(requests)
        assert [r.request.specialized_name for r in results] == \
            [r.specialized_name for r in requests]

    def test_compile_backend_functions_fallback_list(self):
        module = build_module()
        engine = CompilationEngine(module, SpecializeOptions())
        compiled, fallbacks = engine.compile_backend_functions(
            ["interp", "no_such_function"])
        assert "interp" in compiled
        assert fallbacks == [("no_such_function", "not an IR function")]


# ---------------------------------------------------------------------------
# Cross-process artifact-store safety.
# ---------------------------------------------------------------------------

def _hammer_store(cache_dir: str, barrier, rounds: int) -> None:
    """Child-process body: repeatedly cold-compile the shared request
    set into one cache_dir, overlapping with a sibling writer.

    Every iteration rewrites the same artifact files (the advisory-lock
    + reread-validation path), and asserts its own outputs so a torn
    read in the child surfaces as a nonzero exit code.
    """
    barrier.wait()  # maximize writer overlap
    options = SpecializeOptions(cache_dir=cache_dir, backend="py")
    for _ in range(rounds):
        _, outputs = run_snapshot(options)
        check_outputs(outputs)


class TestCrossProcessStore:
    def test_two_process_writers_leave_valid_store(self, tmp_path):
        """Two processes hammering one cache_dir concurrently must not
        interleave torn state: afterwards every entry loads as a clean
        hit and a fresh engine warm-starts with zero fresh compiles."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_hammer_store,
                        args=(str(tmp_path), barrier, 4))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        # The surviving store state must be fully valid: a cold process
        # warm-starts entirely from disk, with no invalid entries.
        options = SpecializeOptions(cache_dir=str(tmp_path), backend="py")
        module = build_module()
        engine = CompilationEngine(module, options)
        results = engine.compile_batch(make_requests())
        assert engine.stats.functions_specialized == 0
        assert engine.stats.artifact_invalid == 0
        assert all(r.artifact_hit for r in results)
        assert all(r.pyfunc is not None for r in results)

    def test_failed_validation_reports_not_stored(self, tmp_path,
                                                  monkeypatch):
        """A write whose reread does not validate (e.g. truncated by the
        filesystem) is reported as not stored, never as success."""
        store = ArtifactStore(str(tmp_path))
        original = ArtifactStore._read_json

        def truncated_read(path):
            data, status = original(path)
            if data is not None and "ir" in data:
                data = dict(data, ir=None)  # simulate a torn payload
            return data, status

        monkeypatch.setattr(ArtifactStore, "_read_json",
                            staticmethod(truncated_read))
        module = build_module()
        func = module.functions["interp"]
        ok = store.store_residual(("k",), func, "text", "gfp", "mfp")
        assert not ok


def _hammer_store_nofcntl(cache_dir: str, barrier, rounds: int) -> None:
    """Like :func:`_hammer_store` but with the non-POSIX lock-free
    fallback forced on (``fcntl = None``), exercising the degraded
    write path under real cross-process contention."""
    from repro.pipeline import artifacts
    artifacts.fcntl = None
    _hammer_store(cache_dir, barrier, rounds)


class TestCrossProcessStoreNoFcntl:
    """The non-POSIX fallback (no advisory locks): writes stay atomic
    (temp file + rename) and reread-validated, so concurrent writers
    may waste work but can never leave torn state behind."""

    def test_two_lock_free_writers_leave_valid_store(self, tmp_path,
                                                     monkeypatch):
        import multiprocessing

        from repro.pipeline import artifacts
        monkeypatch.setattr(artifacts, "fcntl", None)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        workers = [
            ctx.Process(target=_hammer_store_nofcntl,
                        args=(str(tmp_path), barrier, 4))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        options = SpecializeOptions(cache_dir=str(tmp_path), backend="py")
        engine = CompilationEngine(build_module(), options)
        results = engine.compile_batch(make_requests())
        assert engine.stats.functions_specialized == 0
        assert engine.stats.artifact_invalid == 0
        assert all(r.artifact_hit for r in results)

    def test_store_lock_is_inert_without_fcntl(self, tmp_path,
                                               monkeypatch):
        from repro.pipeline import artifacts
        monkeypatch.setattr(artifacts, "fcntl", None)
        lock = artifacts._StoreLock(str(tmp_path))
        with lock:
            assert lock._handle is None
        assert not os.path.exists(os.path.join(str(tmp_path), ".lock"))


# ---------------------------------------------------------------------------
# _StoreLock lifecycle and the atomic-write failure paths.
# ---------------------------------------------------------------------------
class TestStoreLockLifecycle:
    def test_handle_closes_when_body_raises(self, tmp_path):
        from repro.pipeline.artifacts import _StoreLock
        lock = _StoreLock(str(tmp_path))
        with pytest.raises(RuntimeError, match="body"):
            with lock:
                handle = lock._handle
                assert handle is not None and not handle.closed
                raise RuntimeError("body")
        assert lock._handle is None
        assert handle.closed

    def test_handle_closes_even_if_unlock_fails(self, tmp_path):
        """An unlock error (here: the locked body closed the handle, so
        LOCK_UN raises on the dead file) must neither leak the handle
        nor raise out of ``__exit__``."""
        from repro.pipeline.artifacts import _StoreLock
        lock = _StoreLock(str(tmp_path))
        with lock:
            handle = lock._handle
            handle.close()  # fileno() in LOCK_UN now raises ValueError
        assert lock._handle is None
        assert handle.closed

    def test_unopenable_lock_degrades_to_lock_free(self, tmp_path):
        """A cache_dir whose lock path cannot be opened (here it is a
        directory) degrades to lock-free operation: the locked body
        still runs, nothing raises."""
        from repro.pipeline.artifacts import _StoreLock
        os.mkdir(tmp_path / ".lock")
        ran = []
        lock = _StoreLock(str(tmp_path))
        with lock:
            ran.append(lock._handle)
        assert ran == [None]

    def test_reentry_after_degrade_is_clean(self, tmp_path):
        """A degraded acquisition leaves no state that poisons the next
        one: remove the blocker and the lock works again."""
        from repro.pipeline.artifacts import _StoreLock
        os.mkdir(tmp_path / ".lock")
        lock = _StoreLock(str(tmp_path))
        with lock:
            pass
        os.rmdir(tmp_path / ".lock")
        with lock:
            assert lock._handle is not None
        assert lock._handle is None


class TestAtomicWriteFailurePaths:
    def _target(self, tmp_path):
        return str(tmp_path / "entry.json")

    def test_unwritable_directory_returns_false(self, tmp_path):
        ok = locked_write_json(
            str(tmp_path), str(tmp_path / "missing" / "entry.json"),
            {"k": 1}, lambda path: True)
        assert not ok

    def test_unencodable_payload_cleans_up_temp(self, tmp_path):
        ok = locked_write_json(str(tmp_path), self._target(tmp_path),
                               {"k": object()}, lambda path: True)
        assert not ok
        leftovers = [f for f in os.listdir(str(tmp_path))
                     if f.endswith(".tmp")]
        assert leftovers == []
        assert not os.path.exists(self._target(tmp_path))

    def test_fdopen_failure_releases_fd_and_temp(self, tmp_path,
                                                 monkeypatch):
        seen = []
        real_fdopen = os.fdopen

        def failing_fdopen(fd, *args, **kwargs):
            seen.append(fd)
            raise OSError("simulated fdopen failure")

        monkeypatch.setattr(os, "fdopen", failing_fdopen)
        ok = locked_write_json(str(tmp_path), self._target(tmp_path),
                               {"k": 1}, lambda path: True)
        monkeypatch.setattr(os, "fdopen", real_fdopen)
        assert not ok
        assert len(seen) == 1
        # The raw fd was closed on the failure path.
        with pytest.raises(OSError):
            os.fstat(seen[0])
        assert [f for f in os.listdir(str(tmp_path))
                if f.endswith(".tmp")] == []

    def test_validation_failure_reports_false(self, tmp_path):
        ok = locked_write_json(str(tmp_path), self._target(tmp_path),
                               {"k": 1}, lambda path: False)
        assert not ok

    def test_success_round_trip(self, tmp_path):
        target = self._target(tmp_path)

        def validate(path):
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle) == {"k": 1}

        assert locked_write_json(str(tmp_path), target, {"k": 1}, validate)
        assert [f for f in os.listdir(str(tmp_path))
                if f.endswith(".tmp")] == []


# ---------------------------------------------------------------------------
# Fault containment (PR 9): per-request isolation, store degradation,
# executor lifecycle.
# ---------------------------------------------------------------------------
class TestFaultContainment:
    def test_specialize_fault_fails_only_that_request(self):
        from repro.pipeline.faults import FaultPlan
        module = build_module()
        engine = CompilationEngine(
            module, SpecializeOptions(fault_plan=FaultPlan.once(
                "specialize", index=0)))
        results = engine.compile_batch(make_requests())
        assert results[0].error is not None
        assert results[0].function is None
        assert results[1].error is None
        assert results[1].function.name == "spec_b"
        assert engine.stats.requests_failed == 1
        assert engine.stats.functions_specialized == 1

    def test_errored_request_writes_nothing(self, tmp_path):
        from repro.pipeline.faults import FaultPlan
        options = SpecializeOptions(
            cache_dir=str(tmp_path),
            fault_plan=FaultPlan.once("specialize", index=0))
        cache = SpecializationCache()
        engine = CompilationEngine(build_module(), options, cache=cache)
        results = engine.compile_batch(make_requests())
        assert results[0].error is not None
        # Neither cache layer holds state for the failed request; a
        # retry compiles it fresh and both layers fill in.
        retry = engine.compile_batch(make_requests())
        assert retry[0].error is None
        assert retry[0].specialized  # fresh compile, not a (stale) hit
        assert engine.stats.artifacts_written == 2

    def test_dup_of_errored_producer_shares_failure(self):
        from repro.pipeline.faults import FaultPlan
        module = build_module()
        engine = CompilationEngine(
            module, SpecializeOptions(fault_plan=FaultPlan.once(
                "specialize", index=0)))
        request = make_requests()[0]
        twin = dataclasses.replace(request, specialized_name="spec_twin")
        results = engine.compile_batch([request, twin])
        assert results[0].error is not None
        assert results[1].error is not None  # no residual to clone
        assert engine.stats.requests_failed == 2

    def test_emit_fault_fails_request(self):
        from repro.pipeline.faults import FaultPlan
        module = build_module()
        engine = CompilationEngine(
            module, SpecializeOptions(
                backend="py",
                fault_plan=FaultPlan.once("emit", index=0)))
        results = engine.compile_batch(make_requests())
        assert results[0].error is not None
        assert results[1].error is None
        assert results[1].pyfunc is not None

    def test_mid_batch_store_corruption_recompiles(self, tmp_path):
        """An artifact that goes bad *between* the existence probe and
        the read inside one batch (a concurrent eviction or truncation)
        is a silent recompile, never a crash."""
        from repro.pipeline.faults import FaultPlan
        warm = CompilationEngine(build_module(),
                                 SpecializeOptions(cache_dir=str(tmp_path)))
        warm.compile_batch(make_requests())  # populate the store
        options = SpecializeOptions(
            cache_dir=str(tmp_path),
            fault_plan=FaultPlan.once("store_read", index=0))
        engine = CompilationEngine(build_module(), options)
        results = engine.compile_batch(make_requests())
        assert all(r.error is None for r in results)
        assert engine.stats.artifact_invalid == 1
        assert engine.stats.functions_specialized == 1  # the corrupt one
        assert engine.stats.artifact_hits == 1          # the healthy one
        assert print_function(results[0].function, order="id") == \
            print_function(warm.compile_batch(make_requests())[0].function,
                           order="id")

    def test_store_write_outage_degrades_to_memory(self, tmp_path):
        from repro.pipeline.faults import FaultPlan
        from repro.pipeline.artifacts import DEGRADE_AFTER_WRITE_FAILURES
        options = SpecializeOptions(
            cache_dir=str(tmp_path),
            fault_plan=FaultPlan.always("store_write"))
        engine = CompilationEngine(build_module(), options)
        first = engine.compile_batch(make_requests())
        assert all(r.error is None for r in first)
        store = engine.store
        assert store.write_failures >= 2
        # Keep compiling until the degrade threshold trips.
        engine.compile_batch([
            dataclasses.replace(r, specialized_name=r.specialized_name
                                + ".2") for r in make_requests()])
        assert store.degraded
        assert store.health()["memory_entries"] > 0
        assert engine.stats.store_degraded == 1
        # Nothing leaked to disk, but the memory overlay now serves
        # warm loads within this process.
        fresh = CompilationEngine(build_module(),
                                  SpecializeOptions(cache_dir=str(tmp_path)))
        assert fresh.compile_batch(
            make_requests())[0].specialized  # disk really is empty
        again = engine.compile_batch(make_requests())
        assert all(r.artifact_hit for r in again)

    def test_run_all_survives_raising_thunk(self):
        """A raising thunk propagates, queued thunks are cancelled, and
        the engine (with a fresh executor per batch) stays usable."""
        engine = CompilationEngine(build_module(),
                                   SpecializeOptions(jobs=2))
        def boom():
            raise RuntimeError("task crash")
        with pytest.raises(RuntimeError, match="task crash"):
            engine._run_all([boom, lambda: 1, lambda: 2])
        results = engine.compile_batch(make_requests())
        assert [r.function.name for r in results] == ["spec_a", "spec_b"]

    def test_process_worker_faults_are_contained(self, tmp_path):
        """Injected faults inside process-pool workers come back as
        per-request errors, not as a broken pool."""
        from repro.pipeline.faults import FaultPlan
        options = SpecializeOptions(
            jobs=2, pool="process",
            fault_plan=FaultPlan.always("specialize"))
        engine = CompilationEngine(build_module(), options)
        results = engine.compile_batch(make_requests())
        assert all(r.error is not None for r in results)
        assert engine.stats.pool_rebuilds == 0  # the pool never broke
        assert engine.pool == "process"
