"""Tests for persisted cross-process profiles (the fleet's hot-set).

Covers the :class:`~repro.pipeline.profiles.ProfileStore` file format
and merge discipline, the corruption-is-no-heat contract, concurrent
cross-process merges (with and without ``fcntl`` advisory locks), and
the controller integration: ``publish_heat`` delta bookkeeping and
``adopt_heat`` warm-start promotion against a shared artifact store.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.specialize import SpecializeOptions
from repro.min.harness import make_tiered_min, sum_to_n_program
from repro.min.interp import PROGRAM_BASE
from repro.pipeline import artifacts
from repro.pipeline.profiles import (
    PROFILE_VERSION,
    ProfileStore,
    open_profile_store,
    profile_key,
)


def _args(program, value):
    return [PROGRAM_BASE, len(program.words), value]


# ---------------------------------------------------------------------------
# Store basics.
# ---------------------------------------------------------------------------
class TestProfileStore:
    def test_missing_file_reads_as_no_heat(self, tmp_path):
        assert ProfileStore(str(tmp_path)).load() == {}

    def test_merge_then_load(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        assert store.merge({"f@0x10": {"calls": 3, "backedges": 40}})
        assert store.load() == {"f@0x10": {"calls": 3, "backedges": 40}}

    def test_merge_accumulates_across_calls(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        store.merge({"f@0x10": {"calls": 2, "backedges": 5}})
        store.merge({"f@0x10": {"calls": 1, "backedges": 0},
                     "g@0x20": {"calls": 7, "backedges": 1}})
        assert store.load() == {
            "f@0x10": {"calls": 3, "backedges": 5},
            "g@0x20": {"calls": 7, "backedges": 1}}

    def test_zero_delta_merge_is_a_successful_noop(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        assert store.merge({"f@0x10": {"calls": 0, "backedges": 0}})
        assert store.load() == {}
        assert not os.path.exists(store.path)

    def test_profile_key_format(self):
        assert profile_key("min_interp", 0x2000) == "min_interp@0x2000"

    def test_open_profile_store_without_cache_dir(self):
        assert open_profile_store(None) is None
        assert open_profile_store("") is None

    def test_open_profile_store_uncreatable_root(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("occupied")
        assert open_profile_store(str(blocker / "cache")) is None


# ---------------------------------------------------------------------------
# Corruption paranoia: bad heat reads as no heat, never as an error.
# ---------------------------------------------------------------------------
class TestProfileRobustness:
    def _write(self, store, payload: bytes):
        os.makedirs(store.dir, exist_ok=True)
        with open(store.path, "wb") as handle:
            handle.write(payload)

    def test_garbage_reads_as_no_heat(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        self._write(store, b"\x00\xffnot json")
        assert store.load() == {}

    def test_version_skew_reads_as_no_heat(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        self._write(store, json.dumps(
            {"version": PROFILE_VERSION + 1,
             "heat": {"f@0x10": {"calls": 1, "backedges": 0}}}).encode())
        assert store.load() == {}

    def test_non_dict_payload_reads_as_no_heat(self, tmp_path):
        store = ProfileStore(str(tmp_path))
        self._write(store, json.dumps([1, 2, 3]).encode())
        assert store.load() == {}

    def test_mangled_record_is_dropped_not_fatal(self, tmp_path):
        """Per-record validation: one bad record (wrong type, negative,
        bool, missing field) drops that record and keeps the rest."""
        store = ProfileStore(str(tmp_path))
        self._write(store, json.dumps({
            "version": PROFILE_VERSION,
            "heat": {
                "good@0x1": {"calls": 4, "backedges": 2},
                "neg@0x2": {"calls": -1, "backedges": 0},
                "bool@0x3": {"calls": True, "backedges": 0},
                "str@0x4": {"calls": "hot", "backedges": 0},
                "missing@0x5": {"calls": 2},
                "shape@0x6": [1, 2],
            }}).encode())
        assert store.load() == {"good@0x1": {"calls": 4, "backedges": 2}}

    def test_merge_over_corrupt_file_restarts_heat(self, tmp_path):
        """Merging into a corrupt heat file replaces it with a valid one
        containing (at least) the merged delta."""
        store = ProfileStore(str(tmp_path))
        self._write(store, b"torn!")
        assert store.merge({"f@0x10": {"calls": 1, "backedges": 0}})
        assert store.load() == {"f@0x10": {"calls": 1, "backedges": 0}}


# ---------------------------------------------------------------------------
# Concurrent cross-process merges.
# ---------------------------------------------------------------------------

def _hammer_heat(root: str, barrier, rounds: int) -> None:
    """Child-process body: merge one-call deltas into the shared heat
    file, overlapping with sibling writers."""
    store = ProfileStore(root)
    barrier.wait()
    for _ in range(rounds):
        assert store.merge({"f@0x10": {"calls": 1, "backedges": 2}})


def _hammer_heat_nofcntl(root: str, barrier, rounds: int) -> None:
    """Lock-free variant: a racing ``os.replace`` can make any single
    merge report failure (the reread-validate step sees the sibling's
    file), so only overall progress is asserted, not per-merge success."""
    artifacts.fcntl = None
    store = ProfileStore(root)
    barrier.wait()
    merged = 0
    for _ in range(rounds):
        if store.merge({"f@0x10": {"calls": 1, "backedges": 2}}):
            merged += 1
    assert merged >= 1


class TestCrossProcessHeat:
    WORKERS = 2
    ROUNDS = 25

    def _run(self, root, target):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(self.WORKERS)
        workers = [ctx.Process(target=target,
                               args=(root, barrier, self.ROUNDS))
                   for _ in range(self.WORKERS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

    def test_concurrent_merges_lose_no_heat(self, tmp_path):
        """With advisory locks, read-modify-write merges serialize: the
        final heat is the exact sum of every worker's deltas."""
        self._run(str(tmp_path), _hammer_heat)
        heat = ProfileStore(str(tmp_path)).load()
        total = self.WORKERS * self.ROUNDS
        assert heat == {"f@0x10": {"calls": total, "backedges": 2 * total}}

    def test_lock_free_merges_stay_valid(self, tmp_path, monkeypatch):
        """Without ``fcntl`` the merge degrades to lock-free: racing
        read-modify-writes may lose increments, but the surviving file
        is always a whole, valid heat map (atomic replace + per-record
        validation)."""
        monkeypatch.setattr(artifacts, "fcntl", None)
        self._run(str(tmp_path), _hammer_heat_nofcntl)
        store = ProfileStore(str(tmp_path))
        heat = store.load()
        assert set(heat) == {"f@0x10"}
        record = heat["f@0x10"]
        total = self.WORKERS * self.ROUNDS
        assert 1 <= record["calls"] <= total
        assert record["backedges"] == 2 * record["calls"]
        # And the degraded store still merges going forward.
        assert store.merge({"f@0x10": {"calls": 1, "backedges": 2}})


# ---------------------------------------------------------------------------
# Controller integration: publish/adopt.
# ---------------------------------------------------------------------------
class TestHeatPublishAdopt:
    def _serve(self, program, cache_dir, calls=5, threshold=3):
        options = SpecializeOptions(backend="vm", cache_dir=cache_dir)
        vm, controller = make_tiered_min(program, threshold=threshold,
                                         options=options)
        for _ in range(calls):
            vm.call("min_interp", _args(program, 0))
        return vm, controller

    def test_publish_then_adopt_skips_reprofiling(self, tmp_path):
        """A fresh worker adopting published heat promotes the hot set
        up front — compiling zero fresh functions against the warm
        artifact store — and serves its first call at steady state."""
        program = sum_to_n_program(40)
        cache_dir = str(tmp_path)
        store = ProfileStore(cache_dir)
        vm_a, controller_a = self._serve(program, cache_dir)
        assert controller_a.stats.promotions == 1
        assert controller_a.publish_heat(store)

        vm_b, controller_b = make_tiered_min(
            program, threshold=3,
            options=SpecializeOptions(backend="vm", cache_dir=cache_dir))
        adopted = controller_b.adopt_heat(store)
        assert len(adopted) == 1
        engine_stats = controller_b.compiler.engine.stats
        assert engine_stats.functions_specialized == 0
        assert engine_stats.artifact_hits == 1
        # First call runs the adopted residual immediately.
        result = vm_b.call("min_interp", _args(program, 0))
        assert result == vm_a.call("min_interp", _args(program, 0))
        assert controller_b.stats.tier0_calls == 0

    def test_publish_sends_only_deltas(self, tmp_path):
        program = sum_to_n_program(10)
        store = ProfileStore(str(tmp_path))
        vm, controller = self._serve(program, str(tmp_path), calls=4,
                                     threshold=100)
        assert controller.publish_heat(store)
        first = store.load()
        # No new calls: the second publish must not re-contribute.
        assert controller.publish_heat(store)
        assert store.load() == first
        vm.call("min_interp", _args(program, 0))
        assert controller.publish_heat(store)
        key = profile_key("min_interp", PROGRAM_BASE)
        assert store.load()[key]["calls"] == first[key]["calls"] + 1

    def test_failed_publish_retains_delta(self, tmp_path, monkeypatch):
        program = sum_to_n_program(10)
        store = ProfileStore(str(tmp_path))
        vm, controller = self._serve(program, str(tmp_path), calls=3,
                                     threshold=100)
        monkeypatch.setattr(ProfileStore, "merge",
                            lambda self, deltas: False)
        assert not controller.publish_heat(store)
        monkeypatch.undo()
        assert controller.publish_heat(store)
        key = profile_key("min_interp", PROGRAM_BASE)
        assert store.load()[key]["calls"] == 3

    def test_adopted_heat_is_not_republished(self, tmp_path):
        """Adoption marks fleet heat as already published, so a worker
        that adopts and then publishes contributes only its own calls."""
        program = sum_to_n_program(10)
        store = ProfileStore(str(tmp_path))
        vm_a, controller_a = self._serve(program, str(tmp_path), calls=4,
                                         threshold=100)
        assert controller_a.publish_heat(store)
        key = profile_key("min_interp", PROGRAM_BASE)
        baseline = store.load()[key]["calls"]

        vm_b, controller_b = make_tiered_min(
            program, threshold=100,
            options=SpecializeOptions(backend="vm",
                                      cache_dir=str(tmp_path)))
        controller_b.adopt_heat(store)
        vm_b.call("min_interp", _args(program, 0))
        assert controller_b.publish_heat(store)
        assert store.load()[key]["calls"] == baseline + 1

    def test_cold_heat_below_threshold_seeds_without_promoting(
            self, tmp_path):
        program = sum_to_n_program(10)
        store = ProfileStore(str(tmp_path))
        vm_a, controller_a = self._serve(program, str(tmp_path), calls=2,
                                         threshold=100)
        controller_a.backedge_weight = 1 << 30
        assert controller_a.publish_heat(store)

        vm_b, controller_b = make_tiered_min(
            program, threshold=4,
            options=SpecializeOptions(backend="vm",
                                      cache_dir=str(tmp_path)))
        controller_b.backedge_weight = 1 << 30
        assert controller_b.adopt_heat(store) == []
        assert controller_b.stats.promotions == 0
        # The seeded counters shorten the remaining runway: 2 fleet
        # calls + 2 local calls cross the threshold of 4.
        vm_b.call("min_interp", _args(program, 0))
        assert controller_b.stats.promotions == 0
        vm_b.call("min_interp", _args(program, 0))
        assert controller_b.stats.promotions == 1

    def test_adopt_from_empty_store_is_a_noop(self, tmp_path):
        program = sum_to_n_program(10)
        store = ProfileStore(str(tmp_path))
        vm, controller = make_tiered_min(
            program, threshold=3,
            options=SpecializeOptions(backend="vm",
                                      cache_dir=str(tmp_path)))
        assert controller.adopt_heat(store) == []
        assert controller.stats.promotions == 0


# ---------------------------------------------------------------------------
# Endpoint churn vs persisted heat: heat keys follow program content.
# ---------------------------------------------------------------------------
class TestChurnHeatKeys:
    def _fleet_worker(self, endpoint, cache_dir, threshold=3):
        from repro.min.fleet import make_fleet_worker
        options = SpecializeOptions(backend="vm", cache_dir=cache_dir)
        return make_fleet_worker([endpoint], threshold=threshold,
                                 options=options)

    def test_new_tenant_at_reused_base_adopts_no_stale_heat(
            self, tmp_path):
        """Heat published for program A at a base must not warm a
        *different* program B later registered at the same base — fleet
        heat keys on the endpoint's content token, not its address."""
        from repro.min.fleet import endpoint_at, serve, sum_squares_program
        store = ProfileStore(str(tmp_path))
        old = endpoint_at(0, "svc", sum_to_n_program(40))
        vm_a, controller_a = self._fleet_worker(old, str(tmp_path))
        for _ in range(5):
            serve(vm_a, old)
        assert controller_a.stats.promotions == 1
        assert controller_a.publish_heat(store)
        assert old.tier_entry().heat_key in store.load()

        new = endpoint_at(0, "svc", sum_squares_program(12))
        vm_b, controller_b = self._fleet_worker(new, str(tmp_path))
        assert controller_b.adopt_heat(store) == []
        assert controller_b.stats.promotions == 0
        profile = controller_b.profiles[("min_interp", new.base)]
        assert profile.calls == 0 and profile.backedges == 0

    def test_same_program_adopts_heat_across_restart(self, tmp_path):
        """The content token is the *stable* half of the key: a fresh
        worker serving the same program does inherit the fleet's heat."""
        from repro.min.fleet import endpoint_at, serve
        store = ProfileStore(str(tmp_path))
        endpoint = endpoint_at(0, "svc", sum_to_n_program(40))
        vm_a, controller_a = self._fleet_worker(endpoint, str(tmp_path))
        for _ in range(5):
            serve(vm_a, endpoint)
        assert controller_a.publish_heat(store)

        vm_b, controller_b = self._fleet_worker(endpoint, str(tmp_path))
        adopted = controller_b.adopt_heat(store)
        assert len(adopted) == 1
        assert serve(vm_b, endpoint) == serve(vm_a, endpoint)
        assert controller_b.stats.tier0_calls == 0


# ---------------------------------------------------------------------------
# Fault containment (PR 9): merge failures, degraded mode, and the
# publish high-water-mark race.
# ---------------------------------------------------------------------------
class TestProfileFaultContainment:
    def test_heat_accrued_during_merge_is_not_lost(self, tmp_path):
        """Regression: publish_heat used to snap the published marks to
        the *live* counters after a merge — heat arriving while the
        merge was in flight (another thread, or the workload re-entering
        through a host call) was silently marked as published and never
        reached the fleet."""
        program = sum_to_n_program(5)
        vm, controller = make_tiered_min(
            program, threshold=float("inf"),
            options=SpecializeOptions(backend="vm"))
        for _ in range(3):
            vm.call("min_interp", _args(program, 1))
        profile = next(iter(controller.profiles.values()))
        store = ProfileStore(str(tmp_path))
        real_merge = store.merge

        def racing_merge(deltas):
            ok = real_merge(deltas)
            profile.calls += 2  # heat landing mid-merge
            return ok

        store.merge = racing_merge
        assert controller.publish_heat(store)
        # Only the merged delta was marked published; the racing calls
        # remain pending...
        assert profile.published_calls == 3
        assert profile.calls - profile.published_calls == 2
        store.merge = real_merge
        assert controller.publish_heat(store)
        key = profile_key("min_interp", PROGRAM_BASE)
        # ... and the next publish delivers them: nothing lost, nothing
        # double-counted.
        assert store.load()[key]["calls"] == 5

    def test_merge_outage_degrades_to_memory_heat(self, tmp_path):
        from repro.pipeline.faults import FaultPlan
        from repro.pipeline.profiles import DEGRADE_AFTER_MERGE_FAILURES
        store = ProfileStore(str(tmp_path),
                             fault_plan=FaultPlan.always("heat_merge"))
        delta = {"f@0x10": {"calls": 2, "backedges": 10}}
        for _ in range(DEGRADE_AFTER_MERGE_FAILURES - 1):
            assert not store.merge(delta)  # failed, delta retained
        assert not store.degraded
        assert store.merge(delta)  # threshold trip: absorbed in memory
        assert store.degraded
        assert store.health()["memory_records"] == 1
        # Degraded-mode heat keeps accumulating and stays visible to
        # this process's own loads...
        assert store.merge(delta)
        assert store.load() == {"f@0x10": {"calls": 4, "backedges": 20}}
        # ... but never reached the disk.
        assert ProfileStore(str(tmp_path)).load() == {}

    def test_successful_merge_resets_failure_streak(self, tmp_path):
        from repro.pipeline.faults import FaultPlan
        # Fires on consults 0 and 1, then heals: two failures, then a
        # success must reset the consecutive counter (no degrade).
        plan = FaultPlan(at={"heat_merge": (0, 1)})
        store = ProfileStore(str(tmp_path), fault_plan=plan)
        delta = {"f@0x10": {"calls": 1, "backedges": 0}}
        assert not store.merge(delta)
        assert not store.merge(delta)
        assert store.merge(delta)  # landed on disk
        assert not store.degraded
        assert store.merge_failures == 2
        assert store.health()["memory_records"] == 0
        assert ProfileStore(str(tmp_path)).load() == \
            {"f@0x10": {"calls": 1, "backedges": 0}}

    def test_degraded_publish_keeps_promotion_decisions_warm(self, tmp_path):
        """A worker whose profile store degraded still adopts its own
        memory heat (load folds the overlay), so local promotion
        decisions keep working while fleet sharing is suspended."""
        from repro.pipeline.faults import FaultPlan
        store = ProfileStore(str(tmp_path),
                             fault_plan=FaultPlan.always("heat_merge"))
        delta = {profile_key("min_interp", PROGRAM_BASE):
                 {"calls": 50, "backedges": 0}}
        while not store.degraded:
            store.merge(delta)
        program = sum_to_n_program(10)
        vm, controller = make_tiered_min(
            program, threshold=3,
            options=SpecializeOptions(backend="vm"))
        adopted = controller.adopt_heat(store)
        assert len(adopted) == 1  # memory-only heat still promotes
