"""Property-based tests (hypothesis) for core invariants.

The headline property is the Futamura equivalence: for *random* Min
bytecode programs, the specialized function computes exactly what the
interpreter computes.  Also covered: the constant-folder matches VM
semantics op by op, and mini-C arithmetic matches a Python model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Runtime,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
    specialize,
)
from repro.core.lattice import fold_pure_op
from repro.frontend import compile_source
from repro.ir import FunctionBuilder, I64, Module, Signature, verify_module
from repro.ir.instructions import FOLDABLE_INT_BINOPS, wrap_i64
from repro.min import PROGRAM_BASE, PyMinInterpreter, build_min_module
from repro.min.isa import MinProgram
from repro.vm import VM

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
small = st.integers(min_value=0, max_value=300)


# ---------------------------------------------------------------------------
# fold_pure_op must agree with the VM, op by op.
# ---------------------------------------------------------------------------
@given(op=st.sampled_from(sorted(FOLDABLE_INT_BINOPS)), a=u64, b=u64)
@settings(max_examples=300, deadline=None)
def test_fold_matches_vm_for_int_binops(op, a, b):
    folded = fold_pure_op(op, None, [a, b])
    fb = FunctionBuilder("f", Signature((I64, I64), (I64,)))
    x, y = [v for v, _ in fb.entry.params]
    fb.ret(fb.emit(op, (x, y)))
    module = Module(memory_size=64)
    module.add_function(fb.finish())
    vm = VM(module)
    if folded is None:
        # Only trapping cases refuse to fold.
        from repro.vm import VMTrap
        with pytest.raises(VMTrap):
            vm.call("f", [a, b])
    else:
        assert vm.call("f", [a, b]) == folded


# ---------------------------------------------------------------------------
# mini-C expressions match a Python model.
# ---------------------------------------------------------------------------
@given(a=u64, b=u64, c=st.integers(min_value=1, max_value=(1 << 64) - 1))
@settings(max_examples=100, deadline=None)
def test_minic_arithmetic_model(a, b, c):
    src = "u64 f(u64 a, u64 b, u64 c) { return (a + b) * 3 ^ (a >> 5) | b / c; }"
    module = Module(memory_size=64)
    compile_source(src).add_to_module(module)
    got = VM(module).call("f", [a, b, c])
    expected = (wrap_i64(wrap_i64(a + b) * 3) ^ (a >> 5)) | (b // c)
    assert got == wrap_i64(expected)


# ---------------------------------------------------------------------------
# Random straight-line-plus-loops Min programs: interpreter == weval.
# ---------------------------------------------------------------------------
@st.composite
def min_programs(draw):
    """Random well-formed Min programs: straight-line arithmetic over a
    few registers, with an optional bounded countdown loop, ending in
    LOAD_REG/HALT."""
    words = []
    num_ops = draw(st.integers(min_value=1, max_value=12))
    regs = st.integers(min_value=0, max_value=3)
    for _ in range(num_ops):
        choice = draw(st.integers(min_value=0, max_value=4))
        if choice == 0:
            words += [0, draw(st.integers(0, 1000))]   # LOAD_IMMEDIATE
        elif choice == 1:
            words += [1, draw(regs)]                    # STORE_REG
        elif choice == 2:
            words += [2, draw(regs)]                    # LOAD_REG
        elif choice == 3:
            words += [3, draw(regs), draw(regs)]        # ADD
        else:
            words += [6, draw(st.integers(0, 50))]      # ADD_IMMEDIATE
    # Optional countdown loop: LOADI k; STORE r3; loop: LOAD r3;
    # ADDI -1; STORE r3; JMPNZ loop.
    if draw(st.booleans()):
        k = draw(st.integers(1, 5))
        words += [0, k, 1, 3]
        loop_start = len(words)
        words += [2, 3, 6, wrap_i64(-1), 1, 3, 7, loop_start]
    words += [2, draw(regs), 9]                         # LOAD_REG; HALT
    return MinProgram(list(words), {})


@given(program=min_programs(),
       input_value=st.integers(min_value=0, max_value=1000),
       use_intrinsics=st.booleans())
@settings(max_examples=40, deadline=None)
def test_futamura_equivalence_on_random_programs(program, input_value,
                                                 use_intrinsics):
    expected = PyMinInterpreter(program).run(input_value)

    module = build_min_module(program)
    generic = "min_interp_spec" if use_intrinsics else "min_interp"
    request = SpecializationRequest(
        generic,
        [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
         SpecializedConst(len(program.words)), Runtime()],
        specialized_name="prop_spec")
    func = specialize(module, request)
    module.add_function(func)
    verify_module(module)

    vm = VM(module)
    interp_got = vm.call("min_interp",
                         [PROGRAM_BASE, len(program.words), input_value])
    vm2 = VM(module)
    spec_got = vm2.call("prop_spec",
                        [PROGRAM_BASE, len(program.words), input_value])
    assert interp_got == expected
    assert spec_got == expected


# ---------------------------------------------------------------------------
# Random mini-C functions: optimizer passes preserve behaviour.
# ---------------------------------------------------------------------------
@given(n=small, m=small, flip=st.booleans())
@settings(max_examples=60, deadline=None)
def test_optimizer_preserves_loop_semantics(n, m, flip):
    src = """
u64 f(u64 n, u64 m, u64 flip) {
  u64 acc = 0;
  for (u64 i = 0; i < n; i++) {
    if (flip) { acc += i * m; } else { acc += i + m; }
    if (acc > 100000) { break; }
  }
  return acc;
}
"""
    module = Module(memory_size=4096)
    compile_source(src).add_to_module(module)
    baseline = VM(module).call("f", [n, m, int(flip)])
    from repro.opt import optimize_function
    optimize_function(module.functions["f"])
    verify_module(module)
    assert VM(module).call("f", [n, m, int(flip)]) == baseline


# ---------------------------------------------------------------------------
# NaN-boxing roundtrips.
# ---------------------------------------------------------------------------
@given(value=st.floats(allow_nan=False, allow_infinity=True))
@settings(max_examples=200, deadline=None)
def test_nan_boxing_roundtrip(value):
    from repro.jsvm.values import box_double, is_double, unbox_double
    boxed = box_double(value)
    assert is_double(boxed)
    back = unbox_double(boxed)
    assert back == value or (back != back and value != value)
