"""Tests for the Wizer-style snapshot workflow and the cache (S3.5/S6.5)."""

import pytest

from repro.core import (
    Runtime,
    SnapshotCompiler,
    SpecializationCache,
    SpecializationRequest,
    SpecializedConst,
    SpecializedMemory,
)
from repro.frontend import compile_source
from repro.ir import Module, verify_module
from repro.vm import VM

INTERP = """
u64 interp(u64 program, u64 proglen, u64 input) {
  u64 pc = 0;
  u64 acc = input;
  weval_push_context(pc);
  while (1) {
    u64 op = load64(program + pc * 8);
    pc = pc + 1;
    switch (op) {
    case 0: { acc = acc + load64(program + pc * 8); pc = pc + 1; break; }
    case 1: { return acc; }
    default: { abort(); }
    }
    weval_update_context(pc);
  }
  return 0;
}

u64 dispatch(u64 fnptr_addr, u64 program, u64 proglen, u64 input) {
  u64 spec = load64(fnptr_addr);
  if (spec != 0) {
    return icall3(spec, program, proglen, input);
  }
  return interp(program, proglen, input);
}
"""

BASE = 0x800
FNPTR = 0x100


def build():
    module = Module(memory_size=1 << 14)
    compile_source(INTERP).add_to_module(module)
    code = [0, 5, 0, 7, 1]  # ADDI 5; ADDI 7; HALT
    for i, word in enumerate(code):
        module.write_init_u64(BASE + i * 8, word)
    return module, code


def make_request(code, name="spec_fn"):
    return SpecializationRequest(
        "interp",
        [SpecializedMemory(BASE, len(code) * 8),
         SpecializedConst(len(code)), Runtime()],
        specialized_name=name)


class TestSnapshotCompiler:
    def test_full_lifecycle(self):
        module, code = build()
        compiler = SnapshotCompiler(module)
        compiler.instantiate()
        compiler.enqueue(make_request(code), FNPTR)
        processed = compiler.process_requests()
        assert len(processed) == 1
        assert processed[0].table_index > 0
        compiler.freeze()
        verify_module(module)

        # Resume: the function pointer is patched in the snapshot, and
        # dispatch routes through the specialized code.
        vm = compiler.resume()
        assert vm.load_u64(FNPTR) == processed[0].table_index
        result = vm.call("dispatch", [FNPTR, BASE, len(code), 30])
        assert result == 42
        assert vm.stats.indirect_calls == 1

    def test_unpatched_pointer_falls_back_to_interpreter(self):
        module, code = build()
        vm = VM(module)
        assert vm.call("dispatch", [FNPTR, BASE, len(code), 30]) == 42
        assert vm.stats.indirect_calls == 0

    def test_duplicate_names_are_uniqued(self):
        module, code = build()
        compiler = SnapshotCompiler(module)
        compiler.instantiate()
        compiler.enqueue(make_request(code, "dup"), FNPTR)
        compiler.enqueue(make_request(code, "dup"), FNPTR + 8)
        processed = compiler.process_requests()
        names = {p.function_name for p in processed}
        assert len(names) == 2

    def test_aot_compile_convenience(self):
        module, code = build()
        # Init function that writes a marker the resumed VM must see.
        init_src = "void init() { store64(0x200, 77); }"
        compile_source(init_src).add_to_module(module)
        compiler = SnapshotCompiler(module)
        vm = compiler.aot_compile("init")
        assert vm.load_u64(0x200) == 77  # heap survived the snapshot


class TestSpecializationCache:
    def test_hit_on_identical_request(self):
        module, code = build()
        cache = SpecializationCache()
        f1, hit1 = cache.get_or_specialize(module, make_request(code, "a"))
        f2, hit2 = cache.get_or_specialize(module, make_request(code, "b"))
        assert not hit1 and hit2
        assert f2.name == "b"  # renamed clone
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_changed_bytecode(self):
        module, code = build()
        cache = SpecializationCache()
        cache.get_or_specialize(module, make_request(code, "a"))
        module.write_init_u64(BASE + 8, 6)  # ADDI 6 instead of 5
        _, hit = cache.get_or_specialize(module, make_request(code, "c"))
        assert not hit
        assert cache.misses == 2

    def test_cached_clone_is_functional(self):
        module, code = build()
        cache = SpecializationCache()
        cache.get_or_specialize(module, make_request(code, "a"))
        func, hit = cache.get_or_specialize(module,
                                            make_request(code, "fresh"))
        assert hit
        module.add_function(func)
        verify_module(module)
        vm = VM(module)
        assert vm.call("fresh", [BASE, len(code), 1]) == 13
