"""Unit tests for the runtime tiering subsystem.

Covers the pieces the differential tier exercises only end-to-end:

* the ``guard`` instruction's verifier placement rules (an unwinding
  guard may appear anywhere no side effect can precede it on *any*
  entry path; resuming site guards are exempt);
* VM deopt mechanics — counter rollback, fallback dispatch, and the
  exactness of the "as if never specialized" contract on both
  execution backends;
* :class:`~repro.pipeline.tiering.TieringController` policy: hot-call
  promotion, loop-backedge scoring, staged tier-2, demote-exactly-once
  after a guard failure, and artifact-store sharing between the AOT
  and tiered flows.
"""

import pytest

from repro.core import SpeculatedConst, SpecializationRequest
from repro.core.request import Runtime, SpecializedConst, SpecializedMemory
from repro.core.specialize import SpecializeOptions, specialize
from repro.ir.function import Block, Function, Signature
from repro.ir.instructions import BlockCall, Instr, Jump, Ret
from repro.ir.types import I64
from repro.ir.verifier import VerificationError, verify_function
from repro.luavm.runtime import LuaRuntime
from repro.min.harness import make_tiered_min, sum_to_n_program
from repro.min.interp import PROGRAM_BASE, build_min_module
from repro.vm import VM
from repro.vm.machine import GuardFailed


def _args(program, value):
    return [PROGRAM_BASE, len(program.words), value]


# ---------------------------------------------------------------------------
# Verifier rules for guards.
# ---------------------------------------------------------------------------

def _guard_func(guard_block: str = "entry", after_store: bool = False,
                imm=7):
    func = Function("g", Signature((I64,), (I64,)))
    entry = func.new_block()
    func.entry = entry.id
    param = func.new_value(I64)
    entry.params = [(param, I64)]
    func.value_types[param] = I64
    other = func.new_block()
    guard = Instr("guard", None, (param,), imm, None)
    if guard_block == "entry":
        if after_store:
            entry.instrs.append(Instr("store64", None, (param, param),
                                      0, None))
        entry.instrs.append(guard)
    else:
        if after_store:
            entry.instrs.append(Instr("store64", None, (param, param),
                                      0, None))
        other.instrs.append(guard)
    entry.terminator = Jump(BlockCall(other.id, ()))
    other.terminator = Ret((param,))
    return func


class TestGuardVerification:
    def test_entry_guard_accepted(self):
        verify_function(_guard_func())

    def test_mid_function_guard_with_clean_prefix_accepted(self):
        # PR 8 relaxation: an unwinding guard is legal anywhere no
        # store/call/global_set can execute on any entry path to it.
        verify_function(_guard_func(guard_block="other"))

    def test_guard_after_side_effect_rejected(self):
        with pytest.raises(VerificationError, match="after a side"):
            verify_function(_guard_func(after_store=True))

    def test_mid_function_guard_after_effectful_path_rejected(self):
        with pytest.raises(VerificationError, match="after a side"):
            verify_function(_guard_func(guard_block="other",
                                        after_store=True))

    def test_resuming_guard_after_side_effect_accepted(self):
        # Resuming guards carry a materialized deopt state: control
        # falls through on a miss, so effectful prefixes are fine.
        verify_function(_guard_func(guard_block="other", after_store=True,
                                    imm=(0, (7,), "resume")))

    def test_polymorphic_guard_with_clean_prefix_accepted(self):
        verify_function(_guard_func(imm=(2, (3, 9))))

    def test_guard_imm_must_be_u64(self):
        func = _guard_func()
        func.entry_block().instrs[0].imm = "nope"
        with pytest.raises(VerificationError, match="guard imm"):
            verify_function(func)

    @pytest.mark.parametrize("imm", [
        (-1, (3,)),               # negative site
        (0, ()),                  # empty value set
        (0, (9, 3)),              # not strictly increasing
        (0, (3, 3)),              # duplicate
        (0, (1 << 64,)),          # out of u64 range
        (0, (3,), "retry"),       # bad third element
        (0, (3,), "resume", 4),   # wrong arity
    ])
    def test_bad_polymorphic_imms_rejected(self, imm):
        with pytest.raises(VerificationError, match="guard"):
            verify_function(_guard_func(imm=imm))

    def test_speculated_residual_verifies(self):
        program = sum_to_n_program(5)
        module = build_min_module(program)
        request = SpecializationRequest(
            "min_interp",
            [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
             SpecializedConst(len(program.words)),
             SpeculatedConst(3)],
            specialized_name="spec_g")
        func = specialize(module, request, SpecializeOptions(backend="vm"))
        verify_function(func, module)
        assert any(i.op == "guard" for i in func.entry_block().instrs)


# ---------------------------------------------------------------------------
# VM deopt mechanics.
# ---------------------------------------------------------------------------

class TestDeopt:
    @pytest.fixture()
    def guarded_module(self):
        program = sum_to_n_program(20)
        module = build_min_module(program)
        request = SpecializationRequest(
            "min_interp",
            [SpecializedMemory(PROGRAM_BASE, program.size_bytes()),
             SpecializedConst(len(program.words)),
             SpeculatedConst(0)],
            specialized_name="spec_g")
        func = specialize(module, request, SpecializeOptions(backend="vm"))
        module.add_function(func)
        return program, module

    def test_unregistered_guard_failure_propagates(self, guarded_module):
        """Without a registered fallback a failed guard is loud, not
        silently wrong."""
        program, module = guarded_module
        vm = VM(module)
        with pytest.raises(GuardFailed):
            vm.call("spec_g", _args(program, 1))

    def test_deopt_is_observably_generic(self, guarded_module):
        """A deopted call matches the generic call in result AND every
        execution counter (fuel, loads, stores): the speculative prefix
        is rolled back in full."""
        program, module = guarded_module
        vm = VM(module)
        vm.deopt_fallbacks["spec_g"] = "min_interp"
        result = vm.call("spec_g", _args(program, 5))
        ref = VM(module)
        expected = ref.call("min_interp", _args(program, 5))
        assert result == expected
        assert vm.stats.fuel == ref.stats.fuel
        assert vm.stats.loads == ref.stats.loads
        assert vm.stats.stores == ref.stats.stores

    def test_deopt_from_compiled_backend(self, guarded_module):
        """GuardFailed raised inside tier-2 compiled code unwinds at the
        same boundary with the same rollback."""
        from repro.backend import compile_function
        program, module = guarded_module
        compiled = compile_function(module.functions["spec_g"], module)
        assert "GuardFailed" in compiled.source
        vm = VM(module)
        vm.install_compiled({"spec_g": compiled.pyfunc})
        vm.deopt_fallbacks["spec_g"] = "min_interp"
        seen = []
        vm.deopt_hook = lambda name, site=None: seen.append(name)
        ref = VM(module)
        assert vm.call("spec_g", _args(program, 5)) == \
            ref.call("min_interp", _args(program, 5))
        assert vm.stats.fuel == ref.stats.fuel
        assert seen == ["spec_g"]

    def test_guard_pass_runs_specialized(self, guarded_module):
        program, module = guarded_module
        vm = VM(module)
        vm.deopt_fallbacks["spec_g"] = "min_interp"
        result = vm.call("spec_g", _args(program, 0))
        ref = VM(module)
        assert result == ref.call("min_interp", _args(program, 0))
        assert vm.stats.fuel < ref.stats.fuel  # actually ran tier 1


# ---------------------------------------------------------------------------
# Nested deopt: a guard failure inside another guarded frame.
# ---------------------------------------------------------------------------

_COUNTER = 256  # heap cell outer bumps before calling inner (side effect)


def _nested_inner(name, guarded):
    """x -> x + 1, optionally behind ``guard x == 7``."""
    func = Function(name, Signature((I64,), (I64,)))
    entry = func.new_block()
    func.entry = entry.id
    x = func.new_value(I64)
    entry.params = [(x, I64)]
    func.value_types[x] = I64
    if guarded:
        entry.instrs.append(Instr("guard", None, (x,), 7, None))
    one = func.new_value(I64)
    entry.instrs.append(Instr("iconst", one, (), 1, I64))
    result = func.new_value(I64)
    entry.instrs.append(Instr("iadd", result, (x, one), None, I64))
    entry.terminator = Ret((result,))
    return func


def _nested_outer(name, guarded):
    """y -> inner_spec(y) + 10, bumping the _COUNTER cell first.

    The counter store is the observable side effect that must NOT run
    twice when the *inner* call's guard fails."""
    func = Function(name, Signature((I64,), (I64,)))
    entry = func.new_block()
    func.entry = entry.id
    y = func.new_value(I64)
    entry.params = [(y, I64)]
    func.value_types[y] = I64
    if guarded:
        entry.instrs.append(Instr("guard", None, (y,), 3, None))
    addr = func.new_value(I64)
    entry.instrs.append(Instr("iconst", addr, (), _COUNTER, I64))
    cur = func.new_value(I64)
    entry.instrs.append(Instr("load64", cur, (addr,), 0, I64))
    one = func.new_value(I64)
    entry.instrs.append(Instr("iconst", one, (), 1, I64))
    bumped = func.new_value(I64)
    entry.instrs.append(Instr("iadd", bumped, (cur, one), None, I64))
    entry.instrs.append(Instr("store64", None, (addr, bumped), 0, None))
    inner = func.new_value(I64)
    entry.instrs.append(Instr("call", inner, (y,), "inner_spec", I64))
    ten = func.new_value(I64)
    entry.instrs.append(Instr("iconst", ten, (), 10, I64))
    result = func.new_value(I64)
    entry.instrs.append(Instr("iadd", result, (inner, ten), None, I64))
    entry.terminator = Ret((result,))
    return func


def _nested_module():
    from repro.ir.module import Module
    module = Module(memory_size=4096)
    module.add_function(_nested_inner("inner_gen", guarded=False))
    module.add_function(_nested_inner("inner_spec", guarded=True))
    module.add_function(_nested_outer("outer_gen", guarded=False))
    module.add_function(_nested_outer("outer_spec", guarded=True))
    return module


class TestNestedDeopt:
    """GuardFailed unwinding out of a guarded call *nested inside
    another guarded frame* must deopt the inner boundary (or propagate
    loudly), never roll back the outer frame — by the time the nested
    call runs, the outer body's side effects are already observable."""

    def _install_compiled(self, vm, module, names):
        from repro.backend import compile_function
        vm.install_compiled({
            name: compile_function(module.functions[name], module).pyfunc
            for name in names})

    @pytest.mark.parametrize("backend", ["vm", "py"])
    def test_inner_deopt_leaves_outer_frame_alone(self, backend):
        """Both boundaries registered: the inner guard failure deopts at
        the inner boundary; the outer specialized frame completes with
        its side effect executed exactly once, and the result matches
        the fully generic execution."""
        module = _nested_module()
        ref_vm = VM(_nested_module())
        ref_vm.deopt_fallbacks["inner_spec"] = "inner_gen"
        expected = ref_vm.call("outer_gen", [3])

        vm = VM(module)
        vm.deopt_fallbacks["outer_spec"] = "outer_gen"
        vm.deopt_fallbacks["inner_spec"] = "inner_gen"
        if backend == "py":
            self._install_compiled(vm, module,
                                   ["outer_spec", "inner_spec"])
        deopts = []
        vm.deopt_hook = lambda name, site=None: deopts.append(name)
        assert vm.call("outer_spec", [3]) == expected
        assert deopts == ["inner_spec"]  # inner boundary, exactly once
        assert vm.load_u64(_COUNTER) == 1  # outer side effect not redone

    @pytest.mark.parametrize("backend", ["vm", "py"])
    def test_foreign_guard_failure_is_reraised(self, backend):
        """Inner boundary unregistered: its failure must propagate out
        of the outer guarded frame, not masquerade as the outer guard
        failing (which would re-run the outer body's side effects)."""
        module = _nested_module()
        vm = VM(module)
        vm.deopt_fallbacks["outer_spec"] = "outer_gen"
        if backend == "py":
            self._install_compiled(vm, module,
                                   ["outer_spec", "inner_spec"])
        deopts = []
        vm.deopt_hook = lambda name, site=None: deopts.append(name)
        with pytest.raises(GuardFailed) as excinfo:
            vm.call("outer_spec", [3])
        assert excinfo.value.function == "inner_spec"
        assert deopts == []  # the outer boundary did not claim it
        assert vm.load_u64(_COUNTER) == 1  # outer body ran exactly once

    def test_counter_rollback_scoped_to_inner_call(self):
        """Fuel/load/store rollback on a nested deopt covers only the
        inner call: the run is counter-identical to one where the inner
        function was never specialized."""
        module = _nested_module()
        ref_vm = VM(module)
        ref_vm.deopt_fallbacks["outer_spec"] = "outer_gen"
        # Reference: outer specialized, inner generic from the start.
        ref_module = _nested_module()
        ref_module.functions["inner_spec"] = \
            _nested_inner("inner_spec", guarded=False)
        ref = VM(ref_module)
        expected = ref.call("outer_spec", [3])
        vm = VM(module)
        vm.deopt_fallbacks["outer_spec"] = "outer_gen"
        vm.deopt_fallbacks["inner_spec"] = "inner_gen"
        assert vm.call("outer_spec", [3]) == expected
        # Identical up to the inner guard's own (rolled back) fuel.
        assert vm.stats.loads == ref.stats.loads
        assert vm.stats.stores == ref.stats.stores


# ---------------------------------------------------------------------------
# Controller policy.
# ---------------------------------------------------------------------------

class TestControllerPolicy:
    def test_never_promotes_below_threshold(self):
        # Neutralize loop scoring (tested separately) so the policy
        # under test is purely the call counter.
        program = sum_to_n_program(3)
        vm, controller = make_tiered_min(program, threshold=10)
        controller.backedge_weight = 1 << 30
        for _ in range(9):
            vm.call("min_interp", _args(program, 0))
        assert controller.stats.promotions == 0
        vm.call("min_interp", _args(program, 0))
        assert controller.stats.promotions == 1
        assert controller.tier_counts()[0] == 0

    def test_backedge_score_promotes_loopy_function(self):
        """One call of a long loop crosses the threshold via the loop
        counters, so the *second* call already runs specialized."""
        program = sum_to_n_program(4000)  # ~5 backedge-weights of spins
        vm, controller = make_tiered_min(
            program, threshold=3, options=SpecializeOptions(backend="vm"))
        vm.call("min_interp", _args(program, 0))
        assert controller.stats.promotions == 0
        vm.call("min_interp", _args(program, 0))
        assert controller.stats.promotions == 1
        profile = next(iter(controller.profiles.values()))
        assert profile.backedges > 0 and profile.calls == 2

    def test_staged_tier2_defers_backend_compile(self):
        program = sum_to_n_program(50)
        options = SpecializeOptions(backend="py")
        vm, controller = make_tiered_min(
            program, threshold=2, options=options, compile_threshold=3)
        profile = next(iter(controller.profiles.values()))
        results = []
        for i in range(8):
            results.append(vm.call("min_interp", _args(program, 0)))
            if i < 1:
                assert profile.tier == 0
            elif i < 4:
                assert profile.tier == 1  # promoted, backend deferred
        assert profile.tier == 2
        assert controller.stats.tier2_installs == 1
        assert profile.installed_name in vm.compiled
        assert len(set(results)) == 1

    def test_staged_tier2_fallback_attempts_emission_once(self):
        """An emitter fallback in staged mode leaves the function on
        the tier-1 residual permanently — it must not re-attempt the
        backend compile on every subsequent hot call."""
        program = sum_to_n_program(30)
        vm, controller = make_tiered_min(
            program, threshold=2, options=SpecializeOptions(backend="py"),
            compile_threshold=2)
        attempts = []
        real = controller.compiler.compile_backend

        def fake_fallback(names):
            # A real emitter fallback records itself (that record is what
            # distinguishes the permanent "cannot express" verdict from a
            # transient emit crash, which PR 9 quarantines and retries).
            attempts.append(names)
            controller.compiler.backend_fallbacks.extend(
                (name, "simulated fallback") for name in names)
            return {}
        controller.compiler.compile_backend = fake_fallback
        ref = VM(build_min_module(program))
        for _ in range(10):
            assert vm.call("min_interp", _args(program, 5)) == \
                ref.call("min_interp", _args(program, 5))
        profile = next(iter(controller.profiles.values()))
        assert profile.tier == 1  # fallback: stays on the IR residual
        assert len(attempts) == 1
        assert controller.stats.tier2_installs == 0
        controller.compiler.compile_backend = real

    def test_demotes_exactly_once(self):
        program = sum_to_n_program(25)
        vm, controller = make_tiered_min(
            program, threshold=2, speculate=True,
            options=SpecializeOptions(backend="vm"))
        ref = VM(build_min_module(program))
        for value in (3, 3, 9, 3, 9, 9):
            assert vm.call("min_interp", _args(program, value)) == \
                ref.call("min_interp", _args(program, value))
        assert controller.stats.speculative_promotions == 1
        assert controller.stats.demotions == 1
        # The respecialized plain residual carries no guards: further
        # input changes cause no deopts.
        assert controller.stats.deopts == 1

    def test_lua_frame_speculation_deopts_on_deeper_call(self):
        """A function promoted with a speculated frame pointer deopts
        when later called from a different stack depth — mid-workload,
        with identical output."""
        source = "\n".join([
            "function leaf(x)",
            "  return x + 1",
            "end",
            "function mid(x)",
            "  return leaf(x) * 10",
            "end",
            "local t = 0",
            "for i = 1, 6 do",
            "  t = t + leaf(i)",
            "end",
            "t = t + mid(3)",
            "print(t)",
        ])
        ref = LuaRuntime(source)
        ref.run_interpreted()
        runtime = LuaRuntime(source,
                             options=SpecializeOptions(backend="vm"))
        runtime.run_tiered(threshold=4, speculate=True)
        assert runtime.printed == ref.printed
        stats = runtime.controller.stats
        assert stats.speculative_promotions >= 1
        assert stats.deopts >= 1
        assert stats.demotions == 1

    def test_aot_and_tiered_share_artifact_store(self, tmp_path):
        """Dynamic promotion against a store warmed by pure AOT compiles
        zero fresh functions — the flows share cache keys."""
        program = sum_to_n_program(40)
        cache_dir = str(tmp_path)
        options = SpecializeOptions(backend="vm", cache_dir=cache_dir)
        # Warm: pure AOT (promote_all) writes the artifacts.
        vm_a, controller_a = make_tiered_min(program, options=options)
        controller_a.promote_all()
        assert controller_a.compiler.engine.stats.functions_specialized == 1
        # Tiered run in a "fresh process": the promotion loads from disk.
        vm_t, controller_t = make_tiered_min(program, threshold=1,
                                             options=options)
        vm_t.call("min_interp", _args(program, 0))
        engine_stats = controller_t.compiler.engine.stats
        assert controller_t.stats.promotions == 1
        assert engine_stats.functions_specialized == 0
        assert engine_stats.artifact_hits == 1

    def test_promote_all_matches_dynamic_result(self):
        program = sum_to_n_program(15)
        vm_d, controller_d = make_tiered_min(
            program, threshold=1, options=SpecializeOptions(backend="vm"))
        dynamic = vm_d.call("min_interp", _args(program, 0))
        vm_s, controller_s = make_tiered_min(
            program, options=SpecializeOptions(backend="vm"))
        controller_s.promote_all()
        name = next(iter(controller_s.profiles.values())).installed_name
        static = vm_s.call(name, _args(program, 0))
        assert dynamic == static
        assert vm_d.stats.fuel == vm_s.stats.fuel

    def test_report_smoke(self):
        program = sum_to_n_program(10)
        vm, controller = make_tiered_min(program, threshold=1)
        vm.call("min_interp", _args(program, 0))
        text = controller.report()
        assert "promotions=1" in text and "tier" in text


class TestEndpointChurn:
    """Endpoint bases are reused across register/unregister churn; a
    new tenant at an old base must never be routed to the previous
    tenant's residual or inherit its profile."""

    def test_churn_loop_never_serves_stale_results(self):
        from repro.min.fleet import (
            add_endpoint,
            constant_program,
            endpoint_at,
            make_fleet_worker,
            remove_endpoint,
            serve,
            sum_squares_program,
        )
        vm, controller = make_fleet_worker(
            [], threshold=2,
            options=SpecializeOptions(backend="py"))
        from repro.min.harness import PyMinInterpreter
        tenants = [
            ("sum", sum_to_n_program(5)),
            ("squares", sum_squares_program(7)),
            ("admin", constant_program(3)),
            ("sum", sum_to_n_program(9)),
        ]
        expected = [PyMinInterpreter(p).run(0) for _, p in tenants]
        # Distinct per round, so a stale redirect cannot pass by luck.
        assert len(set(expected)) == len(expected)
        for round_i, (name, program) in enumerate(tenants):
            endpoint = endpoint_at(0, name, program)
            add_endpoint(vm, controller, endpoint)
            promotions_before = controller.stats.promotions
            # First call runs generic (ground truth), later calls cross
            # the threshold and run the freshly promoted residual.
            for _ in range(4):
                assert serve(vm, endpoint) == expected[round_i]
            assert controller.stats.promotions == promotions_before + 1
            remove_endpoint(vm, controller, endpoint)
            assert ("min_interp", endpoint.base) not in controller.profiles
            assert controller.entries == []
            assert vm.load_u64(endpoint.slot) == 0

    def test_unregister_stops_redirecting_immediately(self):
        from repro.min.fleet import (
            add_endpoint,
            endpoint_at,
            make_fleet_worker,
            remove_endpoint,
            serve,
        )
        vm, controller = make_fleet_worker(
            [], threshold=1, options=SpecializeOptions(backend="vm"))
        old = endpoint_at(0, "old", sum_to_n_program(6))
        add_endpoint(vm, controller, old)
        assert serve(vm, old) == 21  # promotes at the first call
        assert vm.load_u64(old.slot) != 0
        remove_endpoint(vm, controller, old)
        new = endpoint_at(0, "new", sum_to_n_program(8))
        add_endpoint(vm, controller, new)
        # Same base, different program: must run the new program, not
        # the old residual (36, never 21).
        assert serve(vm, new) == 36

    def test_endpoint_tokens_follow_content_not_address(self):
        from repro.min.fleet import endpoint_at
        a = endpoint_at(0, "svc", sum_to_n_program(6))
        b = endpoint_at(0, "svc", sum_to_n_program(8))
        c = endpoint_at(3, "svc", sum_to_n_program(6))
        assert a.token != b.token          # same base, different program
        assert a.token == c.token          # same program, different base
        assert a.tier_entry().heat_key == c.tier_entry().heat_key
