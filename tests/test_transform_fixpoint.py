"""Transform-determinism tier: fast fixpoint engine vs exhaustive
reference.

PR 4 rebuilt the compile side for throughput: the specializer skips
meets whose predecessor out-versions are unchanged, and the mid-end's
scheduler skips passes via dirty kinds and per-pass work detectors.
Every one of those skips is a *claim* — "recomputing this would change
nothing" — and ``SpecializeOptions(debug_exhaustive=True)`` is the
escape hatch that recomputes everything the fast engine elides (both
engines share the priority worklist *order*: the convergence damper's
pin set is order-dependent, so the order is part of which equally-valid
fixpoint is chosen, while the skipping machinery is the part that must
be proven output-neutral).

This tier asserts, over seeded random programs on all three guest
frontends plus the richards macro-workload, that fast and exhaustive
produce byte-identical printed residual IR, byte-identical serialized
(artifact) bytes, byte-identical emitted backend source, identical
deterministic fuel, identical mid-end mutation sequences (per-pass
change totals and round counts), and identical cache/artifact keys.
A single unsound skip anywhere shows up as a byte diff here.
"""

import importlib
import json
import random

import pytest

from repro.backend import UnsupportedConstruct, compile_function
from repro.core.cache import options_key, request_key
from repro.core.specialize import SpecializeOptions
from repro.ir import print_function
from repro.jsvm import JSRuntime
from repro.jsvm.workloads import WORKLOADS
from repro.luavm.runtime import LuaRuntime
from repro.min.interp import (
    PROGRAM_BASE,
    build_min_module,
    min_request,
    specialize_min,
)
from repro.pipeline.serialize import function_to_dict
from repro.vm import VM
from test_differential import (
    random_js_source,
    random_lua_chunk,
    random_min_program,
)

N_MIN, N_LUA, N_JS = 10, 8, 4

FAST = SpecializeOptions(backend="vm")
EXHAUSTIVE = SpecializeOptions(backend="vm", debug_exhaustive=True)


def _emitted_source(func):
    try:
        return compile_function(func).source
    except UnsupportedConstruct as exc:
        return f"<fallback: {exc}>"


def _assert_equivalent_outputs(tag, fast_funcs, fast_stats,
                               exh_funcs, exh_stats):
    """The core byte-identity contract between the two engines."""
    assert sorted(fast_funcs) == sorted(exh_funcs), (
        f"{tag}: residual function sets diverged")
    for name in fast_funcs:
        fast_ir = print_function(fast_funcs[name], order="id")
        exh_ir = print_function(exh_funcs[name], order="id")
        assert fast_ir == exh_ir, (
            f"{tag}: residual IR for {name} diverged between fast and "
            f"exhaustive engines:\n--- fast ---\n{fast_ir}\n"
            f"--- exhaustive ---\n{exh_ir}")
        # The artifact store persists exactly these serialized bytes.
        assert json.dumps(function_to_dict(fast_funcs[name])) == \
            json.dumps(function_to_dict(exh_funcs[name])), (
                f"{tag}: serialized artifact bytes for {name} diverged")
        # And the tier-2 backend compiles them to identical source (or
        # falls back identically).
        assert _emitted_source(fast_funcs[name]) == \
            _emitted_source(exh_funcs[name]), (
                f"{tag}: emitted backend source for {name} diverged")
    # Output-shape stats are part of the deterministic contract; work
    # counters (visits, meets, rebuilds) legitimately differ.
    for field in ("contexts_created", "output_blocks", "output_instrs",
                  "output_block_params"):
        assert getattr(fast_stats, field) == getattr(exh_stats, field), (
            f"{tag}: stats field {field} diverged")
    # The mid-end mutation *sequence* must be identical: a skipped pass
    # is exactly one that would have reported zero changes, so per-pass
    # change totals, pass ordering, and round counts all agree while
    # runs may only shrink.
    assert sorted(fast_stats.opt.per_pass) == \
        sorted(exh_stats.opt.per_pass), f"{tag}: pass sets diverged"
    assert fast_stats.opt.rounds == exh_stats.opt.rounds, (
        f"{tag}: mid-end round counts diverged")
    for name, fast_pass in fast_stats.opt.per_pass.items():
        exh_pass = exh_stats.opt.per_pass[name]
        assert fast_pass.changes == exh_pass.changes, (
            f"{tag}: pass {name} change totals diverged "
            f"({fast_pass.changes} fast vs {exh_pass.changes} exhaustive)")
        assert fast_pass.runs <= exh_pass.runs, (
            f"{tag}: fast engine ran {name} more often than exhaustive")
    assert exh_stats.opt.passes_skipped == 0, (
        f"{tag}: exhaustive engine must never skip a pass")
    assert exh_stats.meets_skipped == 0, (
        f"{tag}: exhaustive engine must never skip a meet")


# ---------------------------------------------------------------------------
# Min ISA: direct specialize() calls, plus VM-run fuel equality.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(N_MIN))
def test_min_fixpoint_determinism(seed):
    rng = random.Random(0xF1A + seed)
    program = random_min_program(rng)
    use_intrinsics = bool(seed % 2)
    input_value = rng.randint(1, 99)

    results = {}
    for tag, options in (("fast", FAST), ("exhaustive", EXHAUSTIVE)):
        module = build_min_module(program)
        func = specialize_min(module, program, use_intrinsics,
                              options=options, name="spec")
        stats = func._weval_stats  # noqa: SLF001 - attached by specialize
        vm = VM(module)
        result = vm.call("spec", [PROGRAM_BASE, len(program.words),
                                  input_value])
        results[tag] = ({"spec": func}, stats, result, vm.stats.fuel)

    fast_funcs, fast_stats, fast_result, fast_fuel = results["fast"]
    exh_funcs, exh_stats, exh_result, exh_fuel = results["exhaustive"]
    _assert_equivalent_outputs(f"min seed {seed}", fast_funcs, fast_stats,
                               exh_funcs, exh_stats)
    assert fast_result == exh_result
    assert fast_fuel == exh_fuel, (
        f"min seed {seed}: fuel diverged {fast_fuel} vs {exh_fuel}")


# ---------------------------------------------------------------------------
# MiniLua and MiniJS: whole-runtime AOT flows.
# ---------------------------------------------------------------------------

def _residuals(runtime):
    return {p.function_name: runtime.module.functions[p.function_name]
            for p in runtime.compiler.processed}


@pytest.mark.parametrize("seed", range(N_LUA))
def test_lua_fixpoint_determinism(seed):
    source = random_lua_chunk(random.Random(0xF1B + seed))
    runs = {}
    for tag, options in (("fast", FAST), ("exhaustive", EXHAUSTIVE)):
        rt = LuaRuntime(source)
        rt.aot_compile(options)
        runs[tag] = (_residuals(rt), rt.compiler.total_stats)
    _assert_equivalent_outputs(f"lua seed {seed}", *runs["fast"],
                               *runs["exhaustive"])


@pytest.mark.parametrize("seed", range(N_JS))
def test_js_fixpoint_determinism(seed):
    source = random_js_source(random.Random(0xF1C + seed))
    config = "wevaled_state" if seed % 2 else "wevaled"
    runs = {}
    for tag, options in (("fast", FAST), ("exhaustive", EXHAUSTIVE)):
        rt = JSRuntime(source, config, options=options)
        rt.aot_compile()
        runs[tag] = (_residuals(rt), rt.compiler.total_stats, rt)
    fast_funcs, fast_stats, fast_rt = runs["fast"]
    exh_funcs, exh_stats, exh_rt = runs["exhaustive"]
    _assert_equivalent_outputs(f"js seed {seed}", fast_funcs, fast_stats,
                               exh_funcs, exh_stats)
    fast_vm = fast_rt.run()
    exh_vm = exh_rt.run()
    assert fast_rt.printed == exh_rt.printed
    assert fast_vm.stats.fuel == exh_vm.stats.fuel


# ---------------------------------------------------------------------------
# Richards: the S6.5 macro-workload, where every fast path is hot.
# ---------------------------------------------------------------------------

def test_richards_fixpoint_determinism():
    runs = {}
    for tag, options in (("fast", FAST), ("exhaustive", EXHAUSTIVE)):
        rt = JSRuntime(WORKLOADS["richards"], "wevaled_state",
                       options=options)
        rt.aot_compile()
        runs[tag] = (_residuals(rt), rt.compiler.total_stats, rt)
    fast_funcs, fast_stats, fast_rt = runs["fast"]
    exh_funcs, exh_stats, exh_rt = runs["exhaustive"]
    _assert_equivalent_outputs("richards", fast_funcs, fast_stats,
                               exh_funcs, exh_stats)
    # The throughput machinery must actually engage on a macro workload
    # (otherwise this tier would be vacuously comparing two exhaustive
    # engines).
    assert fast_stats.opt.passes_skipped > 100, (
        f"dirty-set/work-detector skipping did not engage: "
        f"{fast_stats.opt.passes_skipped} skips")
    assert fast_stats.opt.passes_skipped_nowork > 0
    assert fast_stats.meets_skipped > 0, (
        "unchanged-input meet skipping did not engage")
    assert fast_stats.block_revisits < 1000  # priority worklist converges
    fast_vm = fast_rt.run()
    exh_vm = exh_rt.run()
    assert fast_rt.printed == exh_rt.printed == ["13120"]
    assert fast_vm.stats.fuel == exh_vm.stats.fuel


# ---------------------------------------------------------------------------
# Sole-contributor meet fast path: reusing the predecessor's out-state
# must be *exact*, not merely equivalent.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(4))
def test_single_pred_meet_byte_identity(seed, monkeypatch):
    """Disabling the sole-contributor fast path (every meet rebuilt via
    the full ``meet_states``) yields byte-identical residual IR,
    artifact bytes, emitted source, and fuel — and the fast path must
    actually engage when enabled."""
    specialize_mod = importlib.import_module("repro.core.specialize")

    rng = random.Random(0x51D + seed)
    program = random_min_program(rng)
    use_intrinsics = bool(seed % 2)
    input_value = rng.randint(1, 99)

    results = {}
    for tag, enabled in (("fast", True), ("full", False)):
        monkeypatch.setattr(specialize_mod, "SINGLE_PRED_FAST_MEET",
                            enabled)
        module = build_min_module(program)
        func = specialize_min(module, program, use_intrinsics,
                              options=FAST, name="spec")
        stats = func._weval_stats  # noqa: SLF001
        vm = VM(module)
        result = vm.call("spec", [PROGRAM_BASE, len(program.words),
                                  input_value])
        results[tag] = (func, stats, result, vm.stats.fuel)

    fast_func, fast_stats, fast_result, fast_fuel = results["fast"]
    full_func, full_stats, full_result, full_fuel = results["full"]
    assert fast_stats.meets_single_pred > 0, (
        f"min seed {seed}: sole-contributor fast path did not engage")
    assert full_stats.meets_single_pred == 0
    tag = f"min seed {seed} single-pred"
    assert print_function(fast_func, order="id") == \
        print_function(full_func, order="id"), (
            f"{tag}: residual IR diverged")
    assert json.dumps(function_to_dict(fast_func)) == \
        json.dumps(function_to_dict(full_func)), (
            f"{tag}: serialized artifact bytes diverged")
    assert _emitted_source(fast_func) == _emitted_source(full_func), (
        f"{tag}: emitted backend source diverged")
    assert (fast_result, fast_fuel) == (full_result, full_fuel), (
        f"{tag}: execution diverged")


def test_single_pred_meet_byte_identity_richards(monkeypatch):
    """The macro workload: the fast-meet and full-meet engines agree on
    every richards residual, byte for byte."""
    specialize_mod = importlib.import_module("repro.core.specialize")

    runs = {}
    for tag, enabled in (("fast", True), ("full", False)):
        monkeypatch.setattr(specialize_mod, "SINGLE_PRED_FAST_MEET",
                            enabled)
        rt = JSRuntime(WORKLOADS["richards"], "wevaled_state",
                       options=FAST)
        rt.aot_compile()
        runs[tag] = (_residuals(rt), rt.compiler.total_stats)
    fast_funcs, fast_stats = runs["fast"]
    full_funcs, full_stats = runs["full"]
    assert fast_stats.meets_single_pred > 0
    assert full_stats.meets_single_pred == 0
    assert sorted(fast_funcs) == sorted(full_funcs)
    for name in fast_funcs:
        assert print_function(fast_funcs[name], order="id") == \
            print_function(full_funcs[name], order="id"), (
                f"richards single-pred: residual {name} diverged")


# ---------------------------------------------------------------------------
# Cache/artifact keys: the escape hatch must not split the cache.
# ---------------------------------------------------------------------------

def test_cache_keys_ignore_engine_mode():
    """``debug_exhaustive`` changes how the output is computed, never
    what it is, so it must not appear in any cache or artifact key."""
    assert options_key(FAST) == options_key(EXHAUSTIVE)

    program = random_min_program(random.Random(0xF1D))
    module = build_min_module(program)
    request = min_request(program, use_intrinsics=True)
    snapshot = bytes(module.memory_init)
    assert request_key(module, request, FAST, snapshot) == \
        request_key(module, request, EXHAUSTIVE, snapshot)


def test_warm_artifacts_across_engine_modes(tmp_path):
    """An artifact store written by the fast engine must fully satisfy
    an exhaustive-engine run (same keys, verifier-accepted bytes): zero
    functions specialized on the warm run."""
    source = WORKLOADS["richards"]
    cold = JSRuntime(source, "wevaled_state", options=FAST,
                     cache_dir=str(tmp_path))
    cold.aot_compile()
    assert cold.compiler.engine.stats.functions_specialized > 0

    warm = JSRuntime(source, "wevaled_state", options=EXHAUSTIVE,
                     cache_dir=str(tmp_path))
    warm.aot_compile()
    assert warm.compiler.engine.stats.functions_specialized == 0, (
        "exhaustive engine missed artifacts written by the fast engine")
    for name, func in _residuals(cold).items():
        assert print_function(func, order="id") == \
            print_function(warm.module.functions[name], order="id")
