"""Property tests for the IR verifier and the verifying pass manager.

Two directions:

* **soundness of the mid-end**: every function the specializer produces
  verifies cleanly, and stays valid after each registered pass runs in
  isolation (so no pass can only be run as part of the full pipeline);
* **completeness of the verifier**: hand-built malformed functions —
  use-before-def, bad branch arity, dangling block references, operand
  type mismatches, missing terminators — are each rejected with a
  precise error naming the offence.
"""

import warnings

import pytest

from repro.core.specialize import SpecializeOptions
from repro.frontend import compile_source
from repro.ir import (
    BlockCall,
    FunctionBuilder,
    I64,
    Instr,
    Jump,
    Module,
    Signature,
    VerificationError,
    verify_after_pass,
    verify_function,
)
from repro.ir.clone import clone_function
from repro.min.harness import sum_to_n_program
from repro.min.interp import build_min_module, specialize_min
from repro.opt import PassManager, available_passes, get_pass

O0 = SpecializeOptions(optimize=False)


# ---------------------------------------------------------------------------
# A corpus of real functions: frontend-compiled and specializer-produced.
# ---------------------------------------------------------------------------

CORPUS_SRC = {
    "loop": """
u64 loop(u64 n) {
  u64 acc = 0;
  for (u64 i = 0; i < n; i++) { acc += i * i; }
  return acc;
}
""",
    "diamond": """
u64 diamond(u64 c) {
  u64 r = 0;
  if (c) { r = c * 3; } else { r = c + 7; }
  return r - 1;
}
""",
    "memory": """
u64 memory(u64 p) {
  store64(p, 11);
  store64(p + 8, load64(p) + 1);
  return load64(p) + load64(p + 8);
}
""",
}


def _corpus():
    """(name, module, function) triples covering compiled and
    specialized code, including unoptimized specializer output."""
    entries = []
    for name, src in CORPUS_SRC.items():
        module = Module(memory_size=4096)
        compile_source(src).add_to_module(module)
        entries.append((name, module, module.functions[name]))
    program = sum_to_n_program(10)
    for use_intrinsics in (False, True):
        module = build_min_module(program)
        variant = "state" if use_intrinsics else "plain"
        func = specialize_min(module, program, use_intrinsics, options=O0,
                              name=f"spec_{variant}")
        entries.append((f"spec_{variant}", module, func))
    return entries


_CORPUS = _corpus()


class TestSpecializerOutputVerifies:
    @pytest.mark.parametrize("use_intrinsics", [False, True],
                             ids=["plain", "state"])
    @pytest.mark.parametrize("optimize", [False, True], ids=["O0", "full"])
    def test_specialized_function_verifies(self, use_intrinsics, optimize):
        program = sum_to_n_program(25)
        module = build_min_module(program)
        options = SpecializeOptions(optimize=optimize)
        func = specialize_min(module, program, use_intrinsics,
                              options=options, name="spec")
        verify_function(func, module)


class TestEveryPassPreservesValidity:
    @pytest.mark.parametrize("corpus_name",
                             [name for name, _, _ in _CORPUS])
    @pytest.mark.parametrize("pass_name", available_passes())
    def test_pass_in_isolation(self, pass_name, corpus_name):
        module, original = next((m, f) for name, m, f in _CORPUS
                                if name == corpus_name)
        func = clone_function(original)
        get_pass(pass_name)(func)
        verify_after_pass(func, module, pass_name)


# ---------------------------------------------------------------------------
# Malformed functions must be rejected with precise errors.
# ---------------------------------------------------------------------------

def _valid_function():
    fb = FunctionBuilder("f", Signature((I64,), (I64,)))
    x = fb.entry.params[0][0]
    one = fb.iconst(1)
    y = fb.iadd(x, one)
    fb.ret(y)
    return fb.finish(), y


class TestMalformedRejected:
    def test_valid_baseline_passes(self):
        func, _ = _valid_function()
        verify_function(func)

    def test_use_before_def_same_block(self):
        func, y = _valid_function()
        entry = func.entry_block()
        # Move the use above the definition of its operand.
        entry.instrs.insert(0, Instr("iadd", func.new_value(I64),
                                     (y, y), None, I64))
        with pytest.raises(VerificationError, match="used before defined"):
            verify_function(func)

    def test_use_not_dominating_across_blocks(self):
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        left, right, join = fb.new_block(), fb.new_block(), fb.new_block()
        fb.br_if(x, left, right)
        fb.switch_to(left)
        v = fb.iconst(3)  # defined only on the left path
        fb.jump(join)
        fb.switch_to(right)
        fb.jump(join)
        fb.switch_to(join)
        fb.ret(v)  # use not dominated by def
        func = fb.finish()
        with pytest.raises(VerificationError, match="does not dominate"):
            verify_function(func)

    def test_bad_branch_arity(self):
        fb = FunctionBuilder("f", Signature((I64,), (I64,)))
        x = fb.entry.params[0][0]
        target = fb.new_block([I64])
        fb.jump(target, [x])
        fb.switch_to(target)
        fb.ret(target.param_values()[0])
        func = fb.finish()
        # Drop the branch argument: arity no longer matches the params.
        func.entry_block().terminator = Jump(BlockCall(target.id, ()))
        with pytest.raises(VerificationError,
                           match=r"passes 0 args, expects 1"):
            verify_function(func)

    def test_dangling_block_reference(self):
        func, _ = _valid_function()
        func.entry_block().terminator = Jump(BlockCall(999, ()))
        with pytest.raises(VerificationError, match="unknown block999"):
            verify_function(func)

    def test_missing_terminator(self):
        func, _ = _valid_function()
        func.entry_block().terminator = None
        with pytest.raises(VerificationError, match="lacks a terminator"):
            verify_function(func)

    def test_operand_type_mismatch(self):
        fb = FunctionBuilder("f", Signature((), (I64,)))
        f = fb.fconst(1.5)
        z = fb.iconst(0)
        fb.ret(z)
        func = fb.finish()
        # iadd over an f64 operand.
        func.entry_block().instrs.append(
            Instr("iadd", func.new_value(I64), (f, f), None, I64))
        with pytest.raises(VerificationError, match="expected i64"):
            verify_function(func)

    def test_double_definition(self):
        func, y = _valid_function()
        entry = func.entry_block()
        entry.instrs.append(Instr("iconst", y, (), 5, I64))
        with pytest.raises(VerificationError, match="defined twice"):
            verify_function(func)

    def test_unknown_opcode(self):
        func, _ = _valid_function()
        func.entry_block().instrs.append(
            Instr("bogus", func.new_value(I64), (), None, I64))
        with pytest.raises(VerificationError, match="unknown opcode"):
            verify_function(func)


# ---------------------------------------------------------------------------
# The pass manager's verify mode pins failures to the offending pass.
# ---------------------------------------------------------------------------

class TestVerifyingPassManager:
    def test_broken_pass_is_caught_and_named(self):
        def clobber(func):
            # Delete the first instruction with a result that is still
            # used: a classic broken-rewrite bug.
            for block in func.blocks.values():
                for i, instr in enumerate(block.instrs):
                    if instr.result is not None:
                        del block.instrs[i]
                        return 1
            return 0

        func, _ = _valid_function()
        manager = PassManager([("clobber", clobber)], verify=True)
        with pytest.raises(VerificationError, match="clobber"):
            manager.run(func)

    def test_fixpoint_cap_recorded_and_warned(self):
        def fidget(func):
            return 1  # reports change forever

        func, _ = _valid_function()
        manager = PassManager([("fidget", fidget)], max_rounds=3,
                              verify=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stats = manager.run(func)
        assert stats.fixpoint_cap_hits == 1
        assert stats.rounds == 3
        assert any("fixpoint not reached" in str(w.message) for w in caught)

    def test_fixpoint_reached_not_flagged(self):
        func, _ = _valid_function()
        manager = PassManager("default", verify=True)
        stats = manager.run(func)
        assert stats.fixpoint_cap_hits == 0
        # The scheduler must have considered gvn: either it ran, or its
        # work detector proved it a no-op (verified on a clone, since
        # verify=True re-runs every skipped pass and asserts 0 changes).
        gvn = stats.per_pass["gvn"]
        assert gvn.runs + gvn.skips >= 1
