"""Unit tests for the VM: arithmetic semantics, memory, control, calls."""

import math

import pytest

from repro.ir import FunctionBuilder, HostFunc, I64, F64, Module, Signature
from repro.ir.instructions import wrap_i64
from repro.vm import VM, VMTrap, OutOfFuel

from tests.helpers import run, run_with_stats


def eval_binop(op: str, a, b, ty=I64):
    fb = FunctionBuilder("f", Signature((ty, ty), (I64 if op[0] == "i" or
                                                   op in ("feq", "fne", "flt",
                                                          "fle", "fgt", "fge")
                                                   else F64,)))
    x, y = [v for v, _ in fb.entry.params]
    r = fb.emit(op, (x, y))
    fb.ret(r)
    module = Module(memory_size=64)
    module.add_function(fb.finish())
    return VM(module).call("f", [a, b])


class TestIntegerArithmetic:
    def test_wrapping_add(self):
        assert eval_binop("iadd", (1 << 64) - 1, 2) == 1

    def test_wrapping_mul(self):
        assert eval_binop("imul", 1 << 63, 2) == 0

    def test_signed_division_truncates_toward_zero(self):
        assert eval_binop("idiv_s", wrap_i64(-7), 2) == wrap_i64(-3)
        assert eval_binop("idiv_s", 7, wrap_i64(-2)) == wrap_i64(-3)

    def test_unsigned_division(self):
        assert eval_binop("idiv_u", wrap_i64(-1), 2) == (1 << 63) - 1

    def test_signed_remainder_sign_follows_dividend(self):
        assert eval_binop("irem_s", wrap_i64(-7), 2) == wrap_i64(-1)
        assert eval_binop("irem_s", 7, wrap_i64(-2)) == 1

    def test_divide_by_zero_traps(self):
        with pytest.raises(VMTrap, match="divide by zero"):
            eval_binop("idiv_u", 1, 0)
        with pytest.raises(VMTrap, match="remainder"):
            eval_binop("irem_s", 1, 0)

    def test_shift_masks_to_six_bits(self):
        assert eval_binop("ishl", 1, 64) == 1
        assert eval_binop("ishl", 1, 65) == 2

    def test_arithmetic_shift_right(self):
        assert eval_binop("ishr_s", wrap_i64(-8), 1) == wrap_i64(-4)
        assert eval_binop("ishr_u", wrap_i64(-8), 1) == (wrap_i64(-8) >> 1)

    def test_signed_comparisons(self):
        assert eval_binop("ilt_s", wrap_i64(-1), 0) == 1
        assert eval_binop("ilt_u", wrap_i64(-1), 0) == 0
        assert eval_binop("ige_s", 5, 5) == 1


class TestFloatArithmetic:
    def test_basic_ops(self):
        assert eval_binop("fadd", 1.5, 2.25, F64) == 3.75
        assert eval_binop("fmul", 3.0, -2.0, F64) == -6.0

    def test_division_by_zero_is_inf(self):
        assert eval_binop("fdiv", 1.0, 0.0, F64) == math.inf
        assert math.isnan(eval_binop("fdiv", 0.0, 0.0, F64))

    def test_comparisons(self):
        assert eval_binop("flt", 1.0, 2.0, F64) == 1
        assert eval_binop("fge", 1.0, 2.0, F64) == 0

    def test_nan_compares_false(self):
        assert eval_binop("feq", math.nan, math.nan, F64) == 0
        assert eval_binop("fne", math.nan, math.nan, F64) == 1


class TestConversionsAndBits:
    def test_bitcast_roundtrip(self):
        src = """
        u64 roundtrip(f64 x) { return fbits(x); }
        f64 back(u64 b) { return ffrombits(b); }
        """
        bits = run(src, "roundtrip", [1.5])
        assert isinstance(bits, int)
        assert run(src, "back", [bits]) == 1.5

    def test_itof_is_signed(self):
        assert run("f64 f(u64 x) { return itof(x); }", "f",
                   [wrap_i64(-3)]) == -3.0

    def test_ftoi_truncates(self):
        assert run("u64 f(f64 x) { return ftoi(x); }", "f", [2.9]) == 2
        assert run("u64 f(f64 x) { return ftoi(x); }", "f",
                   [-2.9]) == wrap_i64(-2)

    def test_ftoi_nan_traps(self):
        with pytest.raises(VMTrap):
            run("u64 f(f64 x) { return ftoi(x); }", "f", [math.nan])


class TestMemory:
    def test_load_store_widths(self):
        src = """
        u64 f() {
          store64(0, 0x1122334455667788);
          u64 lo32 = load32u(0);
          u64 hi8 = load8u(7);
          u64 s8 = load8s(6);
          return lo32 + hi8 + s8;
        }
        """
        got = run(src, "f")
        expect = (0x55667788 + 0x11 + 0x22) & ((1 << 64) - 1)
        assert got == expect

    def test_signed_narrow_loads(self):
        src = """
        u64 f() {
          store8(0, 0xFF);
          return load8s(0);
        }
        """
        assert run(src, "f") == wrap_i64(-1)

    def test_float_memory(self):
        src = """
        f64 f() {
          storef64(16, 2.5);
          return loadf64(16) * 2.0;
        }
        """
        assert run(src, "f") == 5.0

    def test_out_of_bounds_traps(self):
        with pytest.raises(VMTrap, match="oob"):
            run("u64 f() { return load64(1000000); }", "f",
                memory_size=4096)


class TestCallsAndTable:
    def test_host_import(self):
        outputs = []

        def record(vm, x):
            outputs.append(x)
            return x * 2

        src = """
        extern u64 double_it(u64 x);
        u64 f(u64 x) { return double_it(x) + 1; }
        """
        assert run(src, "f", [21], externs={"double_it": record}) == 43
        assert outputs == [21]

    def test_indirect_call(self):
        src = """
        u64 add1(u64 x) { return x + 1; }
        u64 call_it(u64 idx, u64 x) { return icall1(idx, x); }
        """
        from tests.helpers import build_module
        module = build_module(src)
        idx = module.add_table_entry("add1")
        vm = VM(module)
        assert vm.call("call_it", [idx, 9]) == 10

    def test_indirect_call_null_traps(self):
        src = "u64 f() { return icall0(0); }"
        with pytest.raises(VMTrap, match="table"):
            run(src, "f")

    def test_call_stack_exhaustion_traps(self):
        src = "u64 f(u64 x) { return f(x); }"
        with pytest.raises(VMTrap, match="stack"):
            run(src, "f", [1])


class TestFuelAndStats:
    def test_fuel_counts_instructions(self):
        src = "u64 f(u64 n) { u64 a = 0; for (u64 i = 0; i < n; i++) { a += i; } return a; }"
        _, stats10 = run_with_stats(src, "f", [10])
        _, stats100 = run_with_stats(src, "f", [100])
        assert stats100.fuel > stats10.fuel * 5

    def test_fuel_limit(self):
        src = "u64 f() { u64 a = 0; while (1) { a += 1; } return a; }"
        from tests.helpers import build_module
        module = build_module(src)
        vm = VM(module, fuel_limit=10_000)
        with pytest.raises(OutOfFuel):
            vm.call("f", [])

    def test_load_store_counters(self):
        src = "u64 f() { store64(0, 7); store64(8, 8); return load64(0); }"
        _, stats = run_with_stats(src, "f")
        assert stats.stores == 2
        assert stats.loads == 1


class TestBackedgeProfiling:
    """Tier-0 loop profiling must track real retreating edges, not the
    accident of block-id numbering."""

    @staticmethod
    def _run_counting(func, args):
        module = Module(memory_size=4096)
        module.add_function(func)
        vm = VM(module)
        vm.count_backedges = True
        result = vm.call(func.name, args)
        return result, vm.stats.backedges

    def test_forward_jump_to_lower_id_is_not_a_backedge(self):
        # join is created before detour, so the forward edge
        # detour -> join lands on a *lower* block id.  The old
        # `target <= source` heuristic counted it as loop heat.
        fb = FunctionBuilder("shuffled", Signature((I64,), (I64,)))
        join = fb.new_block([I64])
        detour = fb.new_block()
        n = fb.entry.params[0][0]
        fb.jump(detour)
        fb.switch_to(detour)
        v = fb.iadd(n, fb.iconst(1))
        fb.jump(join, [v])
        fb.switch_to(join)
        fb.ret(join.param_values()[0])
        result, backedges = self._run_counting(fb.finish(), [41])
        assert result == 42
        assert backedges == 0

    def test_loop_with_high_id_header_still_counts(self):
        # The header is created last (highest id), so the real backedge
        # body -> header jumps to a *higher* id — invisible to the old
        # heuristic, exactly one count per iteration for the new one.
        fb = FunctionBuilder("loop_hi", Signature((I64,), (I64,)))
        exit_b = fb.new_block([I64])
        body = fb.new_block()
        header = fb.new_block([I64, I64])
        n = fb.entry.params[0][0]
        zero = fb.iconst(0)
        fb.jump(header, [zero, zero])
        fb.switch_to(header)
        i, acc = header.param_values()
        cond = fb.ilt_u(i, n)
        fb.br_if(cond, body, exit_b, [], [acc])
        fb.switch_to(body)
        acc2 = fb.iadd(acc, i)
        i2 = fb.iadd(i, fb.iconst(1))
        fb.jump(header, [i2, acc2])
        fb.switch_to(exit_b)
        fb.ret(exit_b.param_values()[0])
        result, backedges = self._run_counting(fb.finish(), [10])
        assert result == sum(range(10))
        assert backedges == 10


class TestIntrinsicPolyfills:
    def test_context_intrinsics_are_noops_dynamically(self):
        src = """
        u64 f(u64 x) {
          weval_push_context(x);
          weval_update_context(x + 1);
          u64 y = weval_assert_const(x) + weval_specialized_value(x, 0, 10);
          weval_pop_context();
          return y;
        }
        """
        assert run(src, "f", [5]) == 10

    def test_state_intrinsics_fail_in_generic_code(self):
        src = "u64 f() { return weval_read_reg(0); }"
        with pytest.raises(RuntimeError, match="state intrinsic"):
            run(src, "f")
